//===- SymbolicTest.cpp - Unit tests for the symbolic engine --------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "symbolic/Evaluator.h"
#include "symbolic/ExprContext.h"
#include "symbolic/Linear.h"
#include "symbolic/Transforms.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::sym;

namespace {

class SymbolicFixture : public ::testing::Test {
protected:
  ExprContext Ctx;
  const Expr *X = Ctx.symbol("x");
  const Expr *Y = Ctx.symbol("y");
  const Expr *Z = Ctx.symbol("z");
};

} // namespace

//===----------------------------------------------------------------------===//
// Interning and leaves
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, ConstantsAreInterned) {
  EXPECT_EQ(Ctx.integer(3), Ctx.constant(Rational(6, 2)));
  EXPECT_NE(Ctx.integer(3), Ctx.integer(4));
}

TEST_F(SymbolicFixture, SymbolsAreInternedByName) {
  EXPECT_EQ(Ctx.symbol("x"), X);
  EXPECT_NE(X, Y);
}

TEST_F(SymbolicFixture, SemanticEqualityIsPointerEquality) {
  EXPECT_EQ(Ctx.add(X, Y), Ctx.add(Y, X));
  EXPECT_EQ(Ctx.mul(X, Y), Ctx.mul(Y, X));
}

//===----------------------------------------------------------------------===//
// Add canonicalization
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, AddFoldsConstants) {
  const Expr *E = Ctx.add({Ctx.integer(2), X, Ctx.integer(3)});
  EXPECT_EQ(E, Ctx.add(Ctx.integer(5), X));
}

TEST_F(SymbolicFixture, AddCollectsLikeTerms) {
  // x + x + x = 3x
  const Expr *E = Ctx.add({X, X, X});
  EXPECT_EQ(E, Ctx.mul(Ctx.integer(3), X));
}

TEST_F(SymbolicFixture, AddCancelsTerms) {
  // x + y - x = y
  const Expr *E = Ctx.add({X, Y, Ctx.neg(X)});
  EXPECT_EQ(E, Y);
}

TEST_F(SymbolicFixture, AddFlattensNestedSums) {
  const Expr *E = Ctx.add(Ctx.add(X, Y), Z);
  EXPECT_EQ(E, Ctx.add({X, Y, Z}));
}

TEST_F(SymbolicFixture, EmptyAddIsZero) {
  EXPECT_TRUE(Ctx.add(std::vector<const Expr *>{})->isZero());
}

TEST_F(SymbolicFixture, Synth2StyleCancellation) {
  // A + B - A - A + B*B - B  =  B^2 - A + 0*B ... = B^2 - A
  const Expr *E = Ctx.add(
      {X, Y, Ctx.neg(X), Ctx.neg(X), Ctx.mul(Y, Y), Ctx.neg(Y)});
  const Expr *Expected =
      Ctx.add(Ctx.neg(X), Ctx.pow(Y, Ctx.integer(2)));
  EXPECT_EQ(E, Expected);
}

//===----------------------------------------------------------------------===//
// Mul / Pow canonicalization
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, MulFoldsConstantsAndZero) {
  EXPECT_EQ(Ctx.mul({Ctx.integer(2), X, Ctx.integer(3)}),
            Ctx.mul(Ctx.integer(6), X));
  EXPECT_TRUE(Ctx.mul(Ctx.zero(), X)->isZero());
}

TEST_F(SymbolicFixture, MulCollectsLikeFactors) {
  // x * x * x * x * x = x^5  (synth_11)
  const Expr *E = Ctx.mul({X, X, X, X, X});
  EXPECT_EQ(E, Ctx.pow(X, Ctx.integer(5)));
}

TEST_F(SymbolicFixture, MulCancelsDivision) {
  // (x*y)/y = x
  const Expr *E = Ctx.div(Ctx.mul(X, Y), Y);
  EXPECT_EQ(E, X);
}

TEST_F(SymbolicFixture, PowBasic) {
  EXPECT_EQ(Ctx.pow(X, Ctx.zero()), Ctx.one());
  EXPECT_EQ(Ctx.pow(X, Ctx.one()), X);
  EXPECT_EQ(Ctx.pow(Ctx.one(), X), Ctx.one());
  EXPECT_EQ(Ctx.pow(Ctx.integer(2), Ctx.integer(10)), Ctx.integer(1024));
}

TEST_F(SymbolicFixture, PowOfPowMultipliesExponents) {
  // (x^(1/2))^4 = x^2  (synth_5 core)
  const Expr *E = Ctx.pow(Ctx.sqrt(X), Ctx.integer(4));
  EXPECT_EQ(E, Ctx.pow(X, Ctx.integer(2)));
}

TEST_F(SymbolicFixture, PowDistributesOverMul) {
  // (x*y)^2 = x^2*y^2
  const Expr *E = Ctx.pow(Ctx.mul(X, Y), Ctx.integer(2));
  EXPECT_EQ(E, Ctx.mul(Ctx.pow(X, Ctx.integer(2)),
                       Ctx.pow(Y, Ctx.integer(2))));
}

TEST_F(SymbolicFixture, PowerQuotientReduces) {
  // x^6 / x^4 = x^2  (synth_7)
  const Expr *E =
      Ctx.div(Ctx.pow(X, Ctx.integer(6)), Ctx.pow(X, Ctx.integer(4)));
  EXPECT_EQ(E, Ctx.pow(X, Ctx.integer(2)));
}

TEST_F(SymbolicFixture, SqrtQuotientReduces) {
  // (x+y)/sqrt(x+y) = sqrt(x+y)  (synth_3)
  const Expr *Sum = Ctx.add(X, Y);
  EXPECT_EQ(Ctx.div(Sum, Ctx.sqrt(Sum)), Ctx.sqrt(Sum));
}

TEST_F(SymbolicFixture, SqrtOfSquareIsIdentityUnderPositivity) {
  EXPECT_EQ(Ctx.sqrt(Ctx.pow(X, Ctx.integer(2))), X);
}

TEST_F(SymbolicFixture, SquaredDoubleSqrtSimplifies) {
  // (sqrt(x) + sqrt(x))^2 canonicalizes to 4x at construction (synth_6),
  // because sqrt(x)+sqrt(x) = 2*sqrt(x) and (2 sqrt(x))^2 = 4x.
  const Expr *E =
      Ctx.pow(Ctx.add(Ctx.sqrt(X), Ctx.sqrt(X)), Ctx.integer(2));
  EXPECT_EQ(E, Ctx.mul(Ctx.integer(4), X));
}

TEST_F(SymbolicFixture, ExactRationalRoots) {
  EXPECT_EQ(Ctx.sqrt(Ctx.constant(Rational(4, 9))),
            Ctx.constant(Rational(2, 3)));
  // sqrt(2) stays symbolic.
  const Expr *Root2 = Ctx.sqrt(Ctx.integer(2));
  EXPECT_TRUE(isa<PowExpr>(Root2));
}

TEST_F(SymbolicFixture, NegativePowerIsReciprocal) {
  // power(x, -1) then times x is 1.
  const Expr *Inv = Ctx.pow(X, Ctx.integer(-1));
  EXPECT_EQ(Ctx.mul(X, Inv), Ctx.one());
}

//===----------------------------------------------------------------------===//
// Exp / Log laws
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, ExpLogInverse) {
  EXPECT_EQ(Ctx.expOf(Ctx.logOf(X)), X);
  EXPECT_EQ(Ctx.logOf(Ctx.expOf(X)), X);
  EXPECT_EQ(Ctx.expOf(Ctx.zero()), Ctx.one());
  EXPECT_EQ(Ctx.logOf(Ctx.one()), Ctx.zero());
}

TEST_F(SymbolicFixture, ExpOfLogSumIsIdentity) {
  // exp(log(x + y)) = x + y  (log_exp_1)
  const Expr *Sum = Ctx.add(X, Y);
  EXPECT_EQ(Ctx.expOf(Ctx.logOf(Sum)), Sum);
}

TEST_F(SymbolicFixture, ExpOfLogDifferenceIsQuotient) {
  // exp(log(x) - log(y)) = x/y  (log_exp_2)
  const Expr *E = Ctx.expOf(Ctx.sub(Ctx.logOf(X), Ctx.logOf(Y)));
  EXPECT_EQ(E, Ctx.div(X, Y));
}

TEST_F(SymbolicFixture, ExpProductMerges) {
  // exp(x)*exp(-x) = 1
  const Expr *E = Ctx.mul(Ctx.expOf(X), Ctx.expOf(Ctx.neg(X)));
  EXPECT_EQ(E, Ctx.one());
}

TEST_F(SymbolicFixture, ExpPowerScalesArgument) {
  EXPECT_EQ(Ctx.pow(Ctx.expOf(X), Ctx.integer(3)),
            Ctx.expOf(Ctx.mul(Ctx.integer(3), X)));
}

TEST_F(SymbolicFixture, LogOfPowerAndProduct) {
  EXPECT_EQ(Ctx.logOf(Ctx.pow(X, Ctx.integer(2))),
            Ctx.mul(Ctx.integer(2), Ctx.logOf(X)));
  EXPECT_EQ(Ctx.logOf(Ctx.mul(X, Y)),
            Ctx.add(Ctx.logOf(X), Ctx.logOf(Y)));
}

//===----------------------------------------------------------------------===//
// Max / Less / Select
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, MaxDedupesAndFoldsConstants) {
  EXPECT_EQ(Ctx.max({X, X}), X);
  EXPECT_EQ(Ctx.max({Ctx.integer(2), Ctx.integer(5)}), Ctx.integer(5));
  const Expr *M = Ctx.max({X, Y});
  EXPECT_EQ(Ctx.max({Y, X}), M);
}

TEST_F(SymbolicFixture, MaxFlattens) {
  EXPECT_EQ(Ctx.max({Ctx.max({X, Y}), Z}), Ctx.max({X, Y, Z}));
}

TEST_F(SymbolicFixture, LessFoldsConstants) {
  EXPECT_TRUE(Ctx.less(Ctx.integer(1), Ctx.integer(2))->isOne());
  EXPECT_TRUE(Ctx.less(Ctx.integer(2), Ctx.integer(1))->isZero());
  EXPECT_TRUE(Ctx.less(X, X)->isZero());
}

TEST_F(SymbolicFixture, SelectSimplifies) {
  EXPECT_EQ(Ctx.select(Ctx.one(), X, Y), X);
  EXPECT_EQ(Ctx.select(Ctx.zero(), X, Y), Y);
  EXPECT_EQ(Ctx.select(Ctx.less(X, Y), Z, Z), Z);
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, EvaluateArithmetic) {
  Environment Env{{X, 2.0}, {Y, 3.0}};
  EXPECT_DOUBLE_EQ(evaluate(Ctx.add(X, Y), Env), 5.0);
  EXPECT_DOUBLE_EQ(evaluate(Ctx.mul(X, Y), Env), 6.0);
  EXPECT_DOUBLE_EQ(evaluate(Ctx.pow(X, Y), Env), 8.0);
  EXPECT_DOUBLE_EQ(evaluate(Ctx.div(X, Y), Env), 2.0 / 3.0);
}

TEST_F(SymbolicFixture, EvaluateFunctions) {
  Environment Env{{X, 2.0}, {Y, 5.0}};
  EXPECT_DOUBLE_EQ(evaluate(Ctx.max({X, Y}), Env), 5.0);
  EXPECT_DOUBLE_EQ(evaluate(Ctx.less(X, Y), Env), 1.0);
  EXPECT_DOUBLE_EQ(evaluate(Ctx.select(Ctx.less(X, Y), X, Y), Env), 2.0);
  EXPECT_NEAR(evaluate(Ctx.logOf(Ctx.expOf(X)), Env), 2.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, SubstituteSymbol) {
  const Expr *E = Ctx.add(Ctx.mul(X, Y), Z);
  const Expr *Sub = substitute(Ctx, E, {{X, Ctx.integer(2)}});
  EXPECT_EQ(Sub, Ctx.add(Ctx.mul(Ctx.integer(2), Y), Z));
}

TEST_F(SymbolicFixture, SubstituteResimplifies) {
  // (x - y) with y := x collapses to 0.
  const Expr *E = Ctx.sub(X, Y);
  EXPECT_TRUE(substitute(Ctx, E, {{Y, X}})->isZero());
}

//===----------------------------------------------------------------------===//
// Expansion and equivalence
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, ExpandDistributes) {
  // (x+y)*z = xz + yz
  const Expr *E = Ctx.mul(Ctx.add(X, Y), Z);
  EXPECT_EQ(expand(Ctx, E), Ctx.add(Ctx.mul(X, Z), Ctx.mul(Y, Z)));
}

TEST_F(SymbolicFixture, ExpandBinomialSquare) {
  // (x+y)^2 = x^2 + 2xy + y^2
  const Expr *E = Ctx.pow(Ctx.add(X, Y), Ctx.integer(2));
  const Expr *Expected = Ctx.add(
      {Ctx.pow(X, Ctx.integer(2)), Ctx.mul({Ctx.integer(2), X, Y}),
       Ctx.pow(Y, Ctx.integer(2))});
  EXPECT_EQ(expand(Ctx, E), Expected);
}

TEST_F(SymbolicFixture, EquivalenceByExpansion) {
  RNG Rng(1);
  // (x+y)^2 - (x-y)^2 == 4xy
  const Expr *Lhs = Ctx.sub(Ctx.pow(Ctx.add(X, Y), Ctx.integer(2)),
                            Ctx.pow(Ctx.sub(X, Y), Ctx.integer(2)));
  const Expr *Rhs = Ctx.mul({Ctx.integer(4), X, Y});
  EXPECT_TRUE(areEquivalent(Ctx, Lhs, Rhs, Rng));
}

TEST_F(SymbolicFixture, EquivalenceRejectsDifferent) {
  RNG Rng(2);
  EXPECT_FALSE(areEquivalent(Ctx, Ctx.add(X, Y), Ctx.mul(X, Y), Rng));
  EXPECT_FALSE(areEquivalent(Ctx, X, Y, Rng));
}

TEST_F(SymbolicFixture, EquivalenceOfMaxForms) {
  RNG Rng(3);
  // max(x, y) + min-free identity: max(x,y) == max(y,x) via canonical form;
  // and max(x,x+0) == x.
  EXPECT_TRUE(areEquivalent(Ctx, Ctx.max({X, Y}), Ctx.max({Y, X}), Rng));
  EXPECT_TRUE(areEquivalent(Ctx, Ctx.max({X, X}), X, Rng));
}

//===----------------------------------------------------------------------===//
// Linear decomposition (solver substrate)
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, DecomposeLinearSimple) {
  // E = 2*x*b0 + y*b1 + 7, targets {b0, b1}.
  const Expr *B0 = Ctx.symbol("b0", "B", {0});
  const Expr *B1 = Ctx.symbol("b1", "B", {1});
  const Expr *E = Ctx.add({Ctx.mul({Ctx.integer(2), X, B0}),
                           Ctx.mul(Y, B1), Ctx.integer(7)});
  auto Result = decomposeLinear(Ctx, E, {B0, B1});
  ASSERT_TRUE(Result.has_value());
  ASSERT_EQ(Result->Coefficients.size(), 2u);
  EXPECT_EQ(Result->Coefficients[0].first, B0);
  EXPECT_EQ(Result->Coefficients[0].second, Ctx.mul(Ctx.integer(2), X));
  EXPECT_EQ(Result->Coefficients[1].first, B1);
  EXPECT_EQ(Result->Coefficients[1].second, Y);
  EXPECT_EQ(Result->Remainder, Ctx.integer(7));
}

TEST_F(SymbolicFixture, DecomposeLinearMergesOccurrences) {
  const Expr *B0 = Ctx.symbol("b0", "B", {0});
  // x*b0 + y*b0 -> coefficient (x+y).
  const Expr *E = Ctx.add(Ctx.mul(X, B0), Ctx.mul(Y, B0));
  auto Result = decomposeLinear(Ctx, E, {B0});
  ASSERT_TRUE(Result.has_value());
  ASSERT_EQ(Result->Coefficients.size(), 1u);
  EXPECT_EQ(Result->Coefficients[0].second, Ctx.add(X, Y));
  EXPECT_TRUE(Result->Remainder->isZero());
}

TEST_F(SymbolicFixture, DecomposeLinearExpandsFirst) {
  const Expr *B0 = Ctx.symbol("b0", "B", {0});
  // (x + b0) * y  ->  coefficient of b0 is y, remainder x*y.
  const Expr *E = Ctx.mul(Ctx.add(X, B0), Y);
  auto Result = decomposeLinear(Ctx, E, {B0});
  ASSERT_TRUE(Result.has_value());
  EXPECT_EQ(Result->Coefficients[0].second, Y);
  EXPECT_EQ(Result->Remainder, Ctx.mul(X, Y));
}

TEST_F(SymbolicFixture, DecomposeLinearRejectsQuadratic) {
  const Expr *B0 = Ctx.symbol("b0", "B", {0});
  EXPECT_FALSE(
      decomposeLinear(Ctx, Ctx.pow(B0, Ctx.integer(2)), {B0}).has_value());
  const Expr *B1 = Ctx.symbol("b1", "B", {1});
  EXPECT_FALSE(decomposeLinear(Ctx, Ctx.mul(B0, B1), {B0, B1}).has_value());
}

TEST_F(SymbolicFixture, DecomposeLinearRejectsBuriedTarget) {
  const Expr *B0 = Ctx.symbol("b0", "B", {0});
  EXPECT_FALSE(decomposeLinear(Ctx, Ctx.expOf(B0), {B0}).has_value());
}

//===----------------------------------------------------------------------===//
// Symbol metadata, printing, misc
//===----------------------------------------------------------------------===//

TEST_F(SymbolicFixture, CollectSymbolsIsSortedAndUnique) {
  const Expr *E = Ctx.add({Ctx.mul(X, Y), X, Z});
  auto Syms = collectSymbols(E);
  ASSERT_EQ(Syms.size(), 3u);
  EXPECT_EQ(Syms[0]->getName(), "x");
  EXPECT_EQ(Syms[1]->getName(), "y");
  EXPECT_EQ(Syms[2]->getName(), "z");
}

TEST_F(SymbolicFixture, CountDistinctInputsGroupsByTensor) {
  const Expr *A0 = Ctx.symbol("A[0]", "A", {0});
  const Expr *A1 = Ctx.symbol("A[1]", "A", {1});
  const Expr *B0 = Ctx.symbol("B[0]", "B", {0});
  EXPECT_EQ(countDistinctInputs(Ctx.add({A0, A1, B0})), 2);
  EXPECT_EQ(countDistinctInputs(Ctx.integer(5)), 0);
}

TEST_F(SymbolicFixture, PrinterRoundTripSpotChecks) {
  EXPECT_EQ(Ctx.add(X, Y)->toString(), "x + y");
  EXPECT_EQ(Ctx.mul(Ctx.integer(2), X)->toString(), "2*x");
  EXPECT_EQ(Ctx.pow(X, Ctx.integer(2))->toString(), "x^2");
  EXPECT_EQ(Ctx.sqrt(X)->toString(), "x^(1/2)");
  // Canonical factor order puts atoms before sums.
  EXPECT_EQ(Ctx.mul(Ctx.add(X, Y), Z)->toString(), "z*(x + y)");
}

TEST_F(SymbolicFixture, CountOps) {
  EXPECT_EQ(X->countOps(), 0);
  EXPECT_EQ(Ctx.add(X, Y)->countOps(), 1);
  EXPECT_EQ(Ctx.mul(Ctx.add(X, Y), Z)->countOps(), 2);
}

//===----------------------------------------------------------------------===//
// Property-style sweeps: canonical forms agree with numeric evaluation
//===----------------------------------------------------------------------===//

namespace {

struct IdentityCase {
  const char *Name;
  // Builds the two sides from (x, y).
  const Expr *(*Lhs)(ExprContext &, const Expr *, const Expr *);
  const Expr *(*Rhs)(ExprContext &, const Expr *, const Expr *);
};

class IdentityTest : public ::testing::TestWithParam<IdentityCase> {};

} // namespace

TEST_P(IdentityTest, CanonicalFormsCoincide) {
  ExprContext Ctx;
  const Expr *X = Ctx.symbol("x");
  const Expr *Y = Ctx.symbol("y");
  const IdentityCase &C = GetParam();
  RNG Rng(99);
  EXPECT_TRUE(
      areEquivalent(Ctx, C.Lhs(Ctx, X, Y), C.Rhs(Ctx, X, Y), Rng))
      << C.Name;
}

static const IdentityCase IdentityCases[] = {
    {"double_negation",
     [](ExprContext &C, const Expr *X, const Expr *) {
       return C.neg(C.neg(X));
     },
     [](ExprContext &, const Expr *X, const Expr *) { return X; }},
    {"sqrt_square",
     [](ExprContext &C, const Expr *X, const Expr *) {
       return C.sqrt(C.mul(X, X));
     },
     [](ExprContext &, const Expr *X, const Expr *) { return X; }},
    {"exp_log_product",
     [](ExprContext &C, const Expr *X, const Expr *Y) {
       return C.expOf(C.add(C.logOf(X), C.logOf(Y)));
     },
     [](ExprContext &C, const Expr *X, const Expr *Y) {
       return C.mul(X, Y);
     }},
    {"difference_of_squares",
     [](ExprContext &C, const Expr *X, const Expr *Y) {
       return C.mul(C.add(X, Y), C.sub(X, Y));
     },
     [](ExprContext &C, const Expr *X, const Expr *Y) {
       return C.sub(C.mul(X, X), C.mul(Y, Y));
     }},
    {"power_tower",
     [](ExprContext &C, const Expr *X, const Expr *) {
       return C.pow(C.pow(X, C.integer(3)), C.constant(Rational(1, 3)));
     },
     [](ExprContext &, const Expr *X, const Expr *) { return X; }},
    {"div_as_negative_power",
     [](ExprContext &C, const Expr *X, const Expr *Y) {
       return C.div(X, Y);
     },
     [](ExprContext &C, const Expr *X, const Expr *Y) {
       return C.mul(X, C.pow(Y, C.integer(-1)));
     }},
    {"select_collapse",
     [](ExprContext &C, const Expr *X, const Expr *Y) {
       return C.select(C.less(X, Y), X, X);
     },
     [](ExprContext &, const Expr *X, const Expr *) { return X; }},
};

INSTANTIATE_TEST_SUITE_P(AlgebraicIdentities, IdentityTest,
                         ::testing::ValuesIn(IdentityCases),
                         [](const ::testing::TestParamInfo<IdentityCase> &I) {
                           return I.param.Name;
                         });

TEST(SymbolicPropertyTest, RandomExpressionsEvaluateConsistentlyAfterExpand) {
  // Property: expand() preserves value on random positive inputs.
  RNG Rng(7);
  for (int Trial = 0; Trial < 40; ++Trial) {
    ExprContext Ctx;
    const Expr *X = Ctx.symbol("x");
    const Expr *Y = Ctx.symbol("y");
    const Expr *Z = Ctx.symbol("z");
    std::vector<const Expr *> Pool = {X, Y, Z, Ctx.integer(2),
                                      Ctx.constant(Rational(1, 2))};
    // Grow a random expression.
    for (int Step = 0; Step < 6; ++Step) {
      const Expr *A = Pool[static_cast<size_t>(
          Rng.uniformInt(0, static_cast<int64_t>(Pool.size()) - 1))];
      const Expr *B = Pool[static_cast<size_t>(
          Rng.uniformInt(0, static_cast<int64_t>(Pool.size()) - 1))];
      const Expr *Combined = nullptr;
      switch (Rng.uniformInt(0, 4)) {
      case 0:
        Combined = Ctx.add(A, B);
        break;
      case 1:
        Combined = Ctx.sub(A, B);
        break;
      case 2:
        Combined = Ctx.mul(A, B);
        break;
      case 3:
        Combined = Ctx.div(A, B);
        break;
      default:
        Combined = Ctx.pow(A, Ctx.integer(2));
        break;
      }
      Pool.push_back(Combined);
    }
    const Expr *E = Pool.back();
    const Expr *Ex = expand(Ctx, E);
    Environment Env{{X, Rng.positive()}, {Y, Rng.positive()},
                    {Z, Rng.positive()}};
    double VE = evaluate(E, Env);
    double VX = evaluate(Ex, Env);
    double Scale = std::max({1.0, std::fabs(VE), std::fabs(VX)});
    EXPECT_NEAR(VE, VX, 1e-8 * Scale) << E->toString();
  }
}

//===----------------------------------------------------------------------===//
// compareExprs is a strict total order (property check)
//===----------------------------------------------------------------------===//

TEST(SymbolicOrderTest, CompareIsAStrictTotalOrder) {
  ExprContext Ctx;
  const Expr *X = Ctx.symbol("x");
  const Expr *Y = Ctx.symbol("y");
  std::vector<const Expr *> Pool = {
      Ctx.zero(),
      Ctx.one(),
      Ctx.constant(Rational(-3, 2)),
      X,
      Y,
      Ctx.add(X, Y),
      Ctx.mul(X, Y),
      Ctx.mul(Ctx.integer(2), X),
      Ctx.pow(X, Ctx.integer(2)),
      Ctx.sqrt(X),
      Ctx.expOf(X),
      Ctx.logOf(Y),
      Ctx.max({X, Y}),
      Ctx.less(X, Y),
      Ctx.select(Ctx.less(X, Y), X, Y),
  };
  for (const Expr *A : Pool)
    for (const Expr *B : Pool) {
      int AB = compareExprs(A, B);
      int BA = compareExprs(B, A);
      // Antisymmetry; zero exactly on identity (interned semantics).
      EXPECT_EQ(AB == 0, A == B);
      EXPECT_EQ(AB < 0, BA > 0);
      for (const Expr *C : Pool) {
        // Transitivity.
        if (AB < 0 && compareExprs(B, C) < 0)
          EXPECT_LT(compareExprs(A, C), 0);
      }
    }
}

TEST(SymbolicOrderTest, PowZeroBaseEdgeCases) {
  ExprContext Ctx;
  const Expr *X = Ctx.symbol("x");
  // 0^positive folds to 0; 0^negative and 0^symbolic stay symbolic
  // (folding would abort on the rational division).
  EXPECT_TRUE(Ctx.pow(Ctx.zero(), Ctx.integer(3))->isZero());
  EXPECT_TRUE(isa<PowExpr>(Ctx.pow(Ctx.zero(), Ctx.integer(-1))));
  EXPECT_TRUE(isa<PowExpr>(Ctx.pow(Ctx.zero(), X)));
  // Large constant powers are kept symbolic rather than overflowing.
  const Expr *Huge =
      Ctx.pow(Ctx.pow(Ctx.integer(4), Ctx.integer(4)), Ctx.integer(256));
  EXPECT_TRUE(isa<PowExpr>(Huge));
}
