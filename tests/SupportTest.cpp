//===- SupportTest.cpp - Unit tests for the support library ---------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Hashing.h"
#include "support/RNG.h"
#include "support/Rational.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace stenso;

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(RationalTest, NormalizesOnConstruction) {
  Rational R(6, 4);
  EXPECT_EQ(R.getNumerator(), 3);
  EXPECT_EQ(R.getDenominator(), 2);
}

TEST(RationalTest, NegativeDenominatorMovesSign) {
  Rational R(3, -6);
  EXPECT_EQ(R.getNumerator(), -1);
  EXPECT_EQ(R.getDenominator(), 2);
  EXPECT_TRUE(R.isNegative());
}

TEST(RationalTest, ZeroIsCanonical) {
  Rational R(0, -7);
  EXPECT_TRUE(R.isZero());
  EXPECT_EQ(R.getDenominator(), 1);
}

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(RationalTest, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
  EXPECT_GE(Rational(7, 7), Rational(1));
}

TEST(RationalTest, IntegerPower) {
  EXPECT_EQ(Rational(2, 3).pow(3), Rational(8, 27));
  EXPECT_EQ(Rational(2).pow(0), Rational(1));
  EXPECT_EQ(Rational(2).pow(-2), Rational(1, 4));
  EXPECT_EQ(Rational(-2).pow(3), Rational(-8));
}

TEST(RationalTest, NthRootExact) {
  Rational Root;
  ASSERT_TRUE(Rational(4, 9).nthRoot(2, Root));
  EXPECT_EQ(Root, Rational(2, 3));
  ASSERT_TRUE(Rational(27).nthRoot(3, Root));
  EXPECT_EQ(Root, Rational(3));
  ASSERT_TRUE(Rational(-8).nthRoot(3, Root));
  EXPECT_EQ(Root, Rational(-2));
}

TEST(RationalTest, NthRootInexactFails) {
  Rational Root;
  EXPECT_FALSE(Rational(2).nthRoot(2, Root));
  EXPECT_FALSE(Rational(-4).nthRoot(2, Root));
  EXPECT_FALSE(Rational(10, 3).nthRoot(2, Root));
}

TEST(RationalTest, ToDoubleAndString) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).toDouble(), 0.25);
  EXPECT_EQ(Rational(3, 4).toString(), "3/4");
  EXPECT_EQ(Rational(5).toString(), "5");
}

TEST(RationalTest, LargeIntermediateDoesNotOverflow) {
  // (1/3000000000) + (1/3000000000) would overflow int64 in the cross
  // product without the 128-bit intermediate.
  Rational A(1, 3000000000LL);
  EXPECT_EQ(A + A, Rational(2, 3000000000LL));
}

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

namespace {

struct Animal {
  enum class Kind { Dog, Cat };
  explicit Animal(Kind K) : K(K) {}
  Kind getKind() const { return K; }

private:
  Kind K;
};

struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) {
    return A->getKind() == Kind::Dog;
  }
};

struct Cat : Animal {
  Cat() : Animal(Kind::Cat) {}
  static bool classof(const Animal *A) {
    return A->getKind() == Kind::Cat;
  }
};

} // namespace

TEST(CastingTest, IsaAndDynCast) {
  Dog D;
  Animal *A = &D;
  EXPECT_TRUE(isa<Dog>(A));
  EXPECT_FALSE(isa<Cat>(A));
  EXPECT_NE(dyn_cast<Dog>(A), nullptr);
  EXPECT_EQ(dyn_cast<Cat>(A), nullptr);
  EXPECT_EQ(cast<Dog>(A), &D);
}

TEST(CastingTest, DynCastOrNullToleratesNull) {
  Animal *A = nullptr;
  EXPECT_EQ(dyn_cast_or_null<Dog>(A), nullptr);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometricMean({1.0, 10.0, 100.0}), 10.0, 1e-12);
}

TEST(StatisticsTest, Median) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatisticsTest, MeanMinStdDev) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(minimum({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(sampleStdDev({2.0, 2.0, 2.0}), 0.0);
  EXPECT_NEAR(sampleStdDev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinterTest, AlignedOutputContainsCells) {
  TablePrinter Table({"name", "value"});
  Table.addRow({"alpha", "1.00"});
  Table.addRow({"b", "2.50"});
  std::ostringstream OS;
  Table.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("2.50"), std::string::npos);
  EXPECT_NE(Out.find("|---"), std::string::npos);
}

TEST(TablePrinterTest, CSVQuoting) {
  TablePrinter Table({"a", "b"});
  Table.addRow({"x,y", "he said \"hi\""});
  std::ostringstream OS;
  Table.printCSV(OS);
  EXPECT_NE(OS.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(OS.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::formatDouble(2.0, 1), "2.0");
}

//===----------------------------------------------------------------------===//
// RNG / Timer / Hashing
//===----------------------------------------------------------------------===//

TEST(RNGTest, DeterministicFromSeed) {
  RNG A(42), B(42);
  for (int I = 0; I < 16; ++I)
    EXPECT_DOUBLE_EQ(A.uniform(0, 1), B.uniform(0, 1));
}

TEST(RNGTest, PositiveStaysPositive) {
  RNG R(7);
  for (int I = 0; I < 100; ++I)
    EXPECT_GT(R.positive(), 0.0);
}

TEST(RNGTest, UniformIntRespectsBounds) {
  RNG R(9);
  for (int I = 0; I < 100; ++I) {
    int64_t V = R.uniformInt(3, 5);
    EXPECT_GE(V, 3);
    EXPECT_LE(V, 5);
  }
}

TEST(TimerTest, DeadlineNeverExpiresWithoutBudget) {
  Deadline D(0);
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingSeconds(), 1e20);
}

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer T;
  double A = T.elapsedSeconds();
  double B = T.elapsedSeconds();
  EXPECT_LE(A, B);
}

TEST(HashingTest, CombineIsOrderSensitive) {
  size_t S1 = 0, S2 = 0;
  hashCombine(S1, 1);
  hashCombine(S1, 2);
  hashCombine(S2, 2);
  hashCombine(S2, 1);
  EXPECT_NE(S1, S2);
}

//===----------------------------------------------------------------------===//
// Fatal-error paths (death tests)
//===----------------------------------------------------------------------===//

TEST(FatalErrorDeathTest, RationalDivisionByZeroAborts) {
  EXPECT_DEATH(Rational(1, 2) / Rational(0),
               "rational division by zero");
}

TEST(FatalErrorDeathTest, RationalZeroDenominatorAborts) {
  EXPECT_DEATH(Rational(1, 0), "zero denominator");
}

TEST(FatalErrorDeathTest, TableRowArityMismatchAborts) {
  TablePrinter Table({"a", "b"});
  EXPECT_DEATH(Table.addRow({"only-one"}), "arity");
}

TEST(FatalErrorDeathTest, GeomeanOfEmptySampleAborts) {
  EXPECT_DEATH(geometricMean({}), "empty sample");
}

TEST(FatalErrorDeathTest, GeomeanOfNegativeAborts) {
  EXPECT_DEATH(geometricMean({1.0, -2.0}), "positive");
}
