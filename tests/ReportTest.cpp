//===- ReportTest.cpp - Post-hoc report builder and differ ----------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// observe/Report.h end to end: reports built from the live telemetry of
/// a real synthesis run must reproduce the run's own statistics exactly
/// (the cross-check), golden fixtures pin the ingestion schema, diff
/// mode must flag a perturbed run, and malformed streams must fail
/// loudly instead of reading as zeros.
///
//===----------------------------------------------------------------------===//

#include "observe/JsonValue.h"
#include "observe/Progress.h"
#include "observe/Report.h"

#include "dsl/Parser.h"
#include "observe/DecisionLog.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

using namespace stenso;
using namespace stenso::observe;

#ifndef STENSO_REPORT_SAMPLES_DIR
#define STENSO_REPORT_SAMPLES_DIR "tests/report_samples"
#endif

namespace {

std::string samplePath(const char *Name) {
  return std::string(STENSO_REPORT_SAMPLES_DIR) + "/" + Name;
}

/// One real (small) synthesis run with every in-memory stream attached.
struct LiveRun {
  synth::SynthesisResult Result;
  std::string StatsJson;
  std::string DecisionsJsonl;
  std::string ProgressJsonl;
};

LiveRun runLiveSynthesis() {
  // log_exp_1: improves to "A + B" in ~200ms while still exercising
  // pruning, so one run feeds every live-stream test below.
  dsl::TensorType Vec4{DType::Float64, Shape({4})};
  dsl::InputDecls Decls = {{"A", Vec4}, {"B", Vec4}};
  auto P = dsl::parseProgram("np.exp(np.log(A + B))", Decls);
  EXPECT_TRUE(P) << P.Error;

  DecisionLog Log;
  std::ostringstream ProgressOS;
  ProgressOptions POpts;
  POpts.IntervalMs = 5;
  ProgressMonitor Monitor(ProgressOS, POpts);
  Monitor.start();

  synth::SynthesisConfig Config;
  Config.CostModelName = "flops";
  Config.TimeoutSeconds = 300;
  Config.Decisions = &Log;
  Config.DecisionsTag = "live";
  Config.Progress = &Monitor;
  LiveRun Run;
  Run.Result = synth::Synthesizer(Config).run(*P.Prog);
  Monitor.stop();

  std::ostringstream StatsOS, DecisionsOS;
  synth::writeStatsJson(Run.Result, StatsOS);
  Log.writeJsonl(DecisionsOS);
  Run.StatsJson = StatsOS.str();
  Run.DecisionsJsonl = DecisionsOS.str();
  Run.ProgressJsonl = ProgressOS.str();
  return Run;
}

/// The live run is deterministic, so one shared instance serves every
/// test that reads it.
const LiveRun &liveRun() {
  static const LiveRun Run = runLiveSynthesis();
  return Run;
}

RunReport buildFromStreams(const LiveRun &Run) {
  ReportStreams Streams;
  Streams.StatsJson = &Run.StatsJson;
  Streams.DecisionsJsonl = &Run.DecisionsJsonl;
  Streams.ProgressJsonl = &Run.ProgressJsonl;
  RunReport R;
  std::string Error;
  EXPECT_TRUE(buildReport(Streams, ReportOptions(), R, Error)) << Error;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Live streams: the report must reproduce the run's own numbers
//===----------------------------------------------------------------------===//

TEST(ReportTest, LiveStreamsReproduceStatsExactly) {
  const LiveRun &Run = liveRun();
  ASSERT_TRUE(Run.Result.Improved);
  RunReport R = buildFromStreams(Run);

  // The decision log's outcome counts ARE the stats counters for the
  // decision-paired prunes — exact, not approximate.
  const synth::SynthesisStats &S = Run.Result.Stats;
  EXPECT_EQ(R.OutcomeCounts["pruned-cost"], S.PrunedByCost);
  EXPECT_EQ(R.OutcomeCounts["pruned-simplification"],
            S.PrunedBySimplification);
  EXPECT_EQ(R.OutcomeCounts["pruned-analysis"],
            S.AnalysisPrunedSign + S.AnalysisPrunedDegree);
  EXPECT_EQ(R.OptimizedCost, Run.Result.OptimizedCost);
  ASSERT_TRUE(R.MinCompletedCost.has_value());
  EXPECT_NEAR(*R.MinCompletedCost, Run.Result.OptimizedCost, 1e-12);

  // The monitor's final heartbeat carries the run's answer.
  EXPECT_TRUE(R.SawFinalHeartbeat);
  ASSERT_TRUE(R.FinalBest.has_value());
  EXPECT_NEAR(*R.FinalBest, Run.Result.OptimizedCost, 1e-12);

  EXPECT_TRUE(crossCheckReport(R).empty());
}

TEST(ReportTest, LiveStreamsRenderBothFormats) {
  const LiveRun &Run = liveRun();
  RunReport R = buildFromStreams(Run);

  std::ostringstream Text;
  renderReportText(R, Text);
  EXPECT_NE(Text.str().find("decision breakdown"), std::string::npos);
  EXPECT_NE(Text.str().find("cross-check: OK"), std::string::npos);

  // The JSON rendering must itself parse with the repo's parser.
  std::ostringstream Json;
  renderReportJson(R, Json);
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(Json.str(), V, Error)) << Error;
  const JsonValue *Check = V.find("cross_check");
  ASSERT_NE(Check, nullptr);
  const JsonValue *Ok = Check->find("ok");
  ASSERT_NE(Ok, nullptr);
  EXPECT_TRUE(Ok->boolValue());
}

TEST(ReportTest, SelfDiffDoesNotDiverge) {
  const LiveRun &Run = liveRun();
  RunReport R = buildFromStreams(Run);
  ReportDiff D = diffReports(R, R);
  EXPECT_FALSE(D.diverged());
  EXPECT_TRUE(D.MetricDiffs.empty());
}

//===----------------------------------------------------------------------===//
// Golden fixtures
//===----------------------------------------------------------------------===//

TEST(ReportTest, GoldenFixturesCrossCheck) {
  ReportInputs Inputs;
  Inputs.StatsPath = samplePath("stats.json");
  Inputs.DecisionsPath = samplePath("decisions.jsonl");
  Inputs.TracePath = samplePath("trace.json");
  Inputs.ProgressPath = samplePath("progress.jsonl");
  Inputs.MetricsPath = samplePath("metrics.json");
  RunReport R;
  std::string Error;
  ASSERT_TRUE(buildReport(Inputs, ReportOptions(), R, Error)) << Error;

  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.Abort, "None");
  EXPECT_EQ(R.OriginalCost, 10.0);
  EXPECT_EQ(R.OptimizedCost, 4.0);
  EXPECT_EQ(R.DecisionCount, 11);
  EXPECT_EQ(R.OutcomeCounts["pruned-cost"], 3);
  ASSERT_TRUE(R.MinCompletedCost.has_value());
  EXPECT_EQ(*R.MinCompletedCost, 4.0);

  // Trajectory: running minimum over depth-0 completions, in log order.
  ASSERT_EQ(R.CostTrajectory.size(), 2u);
  EXPECT_EQ(R.CostTrajectory[0].Cost, 6.0);
  EXPECT_EQ(R.CostTrajectory[1].Cost, 4.0);

  // Trace: 5 events over 2 threads; per-thread attribution splits the
  // holesolver/solve category 30 ms on tid 1 vs 70 ms on tid 2.
  EXPECT_EQ(R.TraceEventCount, 5);
  EXPECT_EQ(R.TraceThreadCount, 2);
  bool FoundSolve = false;
  for (const PhaseStat &P : R.Phases)
    if (P.Cat == "holesolver" && P.Name == "solve") {
      FoundSolve = true;
      EXPECT_EQ(P.Count, 3);
      EXPECT_DOUBLE_EQ(P.TotalMicros, 100000.0);
      EXPECT_DOUBLE_EQ(P.MicrosByTid.at(1), 30000.0);
      EXPECT_DOUBLE_EQ(P.MicrosByTid.at(2), 70000.0);
    }
  EXPECT_TRUE(FoundSolve);

  // Metrics: two shards saw traffic.
  ASSERT_EQ(R.ShardCaches.size(), 2u);
  EXPECT_EQ(R.ShardCaches[0].Shard, 0);
  EXPECT_EQ(R.ShardCaches[0].Hits, 5.0);
  EXPECT_EQ(R.ShardCaches[1].Shard, 3);

  EXPECT_TRUE(crossCheckReport(R).empty());
}

TEST(ReportTest, DiffFlagsPerturbedRun) {
  ReportInputs A, B;
  A.StatsPath = samplePath("stats.json");
  B.StatsPath = samplePath("stats_perturbed.json");
  RunReport RA, RB;
  std::string Error;
  ASSERT_TRUE(buildReport(A, ReportOptions(), RA, Error)) << Error;
  ASSERT_TRUE(buildReport(B, ReportOptions(), RB, Error)) << Error;

  ReportDiff D = diffReports(RA, RB);
  // optimized_cost 4 vs 5 is an answer change — hard divergence.
  ASSERT_TRUE(D.diverged());
  bool FoundCost = false;
  for (const ReportDiff::Entry &E : D.OutcomeDiffs)
    if (E.Key == "optimized_cost") {
      FoundCost = true;
      EXPECT_EQ(E.A, 4.0);
      EXPECT_EQ(E.B, 5.0);
    }
  EXPECT_TRUE(FoundCost);
  // pruned_cost 3 vs 6 is metric drift beyond any sane tolerance.
  bool FoundPrune = false;
  for (const ReportDiff::Entry &E : D.MetricDiffs)
    FoundPrune |= E.Key.find("pruned_cost") != std::string::npos;
  EXPECT_TRUE(FoundPrune);

  std::ostringstream Text;
  renderDiffText(D, RA, RB, Text);
  EXPECT_NE(Text.str().find("DIVERGED"), std::string::npos);
}

TEST(ReportTest, CrossCheckCatchesInconsistentStreams) {
  // The perturbed stats against the original decision log: pruned_cost
  // says 6 but the log only has 3 such records.
  ReportInputs Inputs;
  Inputs.StatsPath = samplePath("stats_perturbed.json");
  Inputs.DecisionsPath = samplePath("decisions.jsonl");
  RunReport R;
  std::string Error;
  ASSERT_TRUE(buildReport(Inputs, ReportOptions(), R, Error)) << Error;
  std::vector<std::string> Mismatches = crossCheckReport(R);
  EXPECT_FALSE(Mismatches.empty());
}

//===----------------------------------------------------------------------===//
// Malformed inputs and edge cases
//===----------------------------------------------------------------------===//

TEST(ReportTest, MalformedStreamIsAnErrorNotZeros) {
  ReportInputs Inputs;
  Inputs.DecisionsPath = samplePath("malformed_decisions.jsonl");
  RunReport R;
  std::string Error;
  EXPECT_FALSE(buildReport(Inputs, ReportOptions(), R, Error));
  EXPECT_NE(Error.find("line"), std::string::npos) << Error;
}

TEST(ReportTest, MissingFileIsAnError) {
  ReportInputs Inputs;
  Inputs.StatsPath = samplePath("no_such_file.json");
  RunReport R;
  std::string Error;
  EXPECT_FALSE(buildReport(Inputs, ReportOptions(), R, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ReportTest, NoInputsIsAnError) {
  RunReport R;
  std::string Error;
  EXPECT_FALSE(buildReport(ReportInputs(), ReportOptions(), R, Error));
}

TEST(ReportTest, TopLosersAreRankedAndTruncated) {
  // Bounds deliberately out of log order; only losers qualify.
  std::string Jsonl =
      R"({"seq":0,"sketch":0,"depth":1,"bound":5.0,"outcome":"pruned-cost","cost":0,"tag":""})"
      "\n"
      R"({"seq":1,"sketch":1,"depth":1,"bound":9.0,"outcome":"no-solution","cost":0,"tag":""})"
      "\n"
      R"({"seq":2,"sketch":2,"depth":0,"bound":9.0,"outcome":"accepted","cost":2.0,"tag":""})"
      "\n"
      R"({"seq":3,"sketch":3,"depth":1,"bound":7.0,"outcome":"pruned-simplification","cost":0,"tag":""})"
      "\n"
      R"({"seq":4,"sketch":4,"depth":1,"bound":8.0,"outcome":"pruned-cost","cost":0,"tag":""})"
      "\n";
  ReportStreams Streams;
  Streams.DecisionsJsonl = &Jsonl;
  ReportOptions Opts;
  Opts.TopK = 3;
  RunReport R;
  std::string Error;
  ASSERT_TRUE(buildReport(Streams, Opts, R, Error)) << Error;
  ASSERT_EQ(R.TopLosers.size(), 3u);
  EXPECT_EQ(R.TopLosers[0].Bound, 9.0);
  EXPECT_EQ(R.TopLosers[1].Bound, 8.0);
  EXPECT_EQ(R.TopLosers[2].Bound, 7.0);
  // The accepted record is a winner, never a loser.
  for (const DecisionRecord &D : R.TopLosers)
    EXPECT_NE(D.Outcome, "accepted");
}

TEST(ReportTest, StatsOnlyReportSkipsAbsentSections) {
  ReportInputs Inputs;
  Inputs.StatsPath = samplePath("stats.json");
  RunReport R;
  std::string Error;
  ASSERT_TRUE(buildReport(Inputs, ReportOptions(), R, Error)) << Error;
  EXPECT_TRUE(R.HasStats);
  EXPECT_FALSE(R.HasDecisions);
  EXPECT_FALSE(R.HasTrace);
  // Cross-checks needing absent streams are skipped, not failed.
  EXPECT_TRUE(crossCheckReport(R).empty());
  std::ostringstream Text;
  renderReportText(R, Text);
  EXPECT_EQ(Text.str().find("decision breakdown"), std::string::npos);
}
