//===- EGraphTest.cpp - Tests for the equality-saturation engine ----------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "egraph/EGraph.h"

#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::egraph;

namespace {

TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

/// Parses a rule pair and adds it to the graph.
bool addRuleFrom(EGraph &G, const std::string &Lhs, const std::string &Rhs,
                 const InputDecls &Decls) {
  auto A = parseProgram(Lhs, Decls);
  auto B = parseProgram(Rhs, Decls);
  EXPECT_TRUE(A && B) << A.Error << B.Error;
  return G.addRule(A.Prog->getRoot(), B.Prog->getRoot());
}

} // namespace

TEST(EGraphTest, HashConsingSharesStructure) {
  EGraph G;
  InputDecls Decls = {{"A", f64({4})}, {"B", f64({4})}};
  auto P1 = parseProgram("A + B", Decls);
  auto P2 = parseProgram("A + B", Decls);
  auto Id1 = G.addProgram(P1.Prog->getRoot());
  auto Id2 = G.addProgram(P2.Prog->getRoot());
  ASSERT_TRUE(Id1 && Id2);
  EXPECT_TRUE(G.sameClass(*Id1, *Id2));
  // A, B, A+B.
  EXPECT_EQ(G.getNumClasses(), 3u);
}

TEST(EGraphTest, RejectsComprehensions) {
  EGraph G;
  auto P = parseProgram("np.stack([x * 2 for x in A], axis=0)",
                        {{"A", f64({3, 2})}});
  EXPECT_FALSE(G.addProgram(P.Prog->getRoot()).has_value());
}

TEST(EGraphTest, SaturationMergesRuleSides) {
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(G, "np.power(X, 2)", "X * X", RuleDecls));

  InputDecls Decls = {{"A", f64({6})}};
  auto Lhs = parseProgram("np.power(A, 2)", Decls);
  auto Rhs = parseProgram("A * A", Decls);
  auto IdL = G.addProgram(Lhs.Prog->getRoot());
  auto IdR = G.addProgram(Rhs.Prog->getRoot());
  ASSERT_TRUE(IdL && IdR);
  EXPECT_FALSE(G.sameClass(*IdL, *IdR));

  SaturationStats Stats = G.saturate();
  EXPECT_TRUE(Stats.Saturated);
  EXPECT_GT(Stats.Merges, 0);
  EXPECT_TRUE(G.sameClass(*IdL, *IdR));
}

TEST(EGraphTest, ExtractionPicksCheaperForm) {
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(G, "np.exp(np.log(X))", "X", RuleDecls));

  InputDecls Decls = {{"A", f64({8})}};
  auto P = parseProgram("np.exp(np.log(A))", Decls);
  auto Id = G.addProgram(P.Prog->getRoot());
  ASSERT_TRUE(Id);
  G.saturate();

  synth::FlopCostModel Model;
  synth::ShapeScaler Scaler;
  std::unique_ptr<Program> Best = G.extract(*Id, Model, Scaler);
  ASSERT_TRUE(Best);
  EXPECT_EQ(printProgram(*Best), "A");
}

TEST(EGraphTest, RulesChainThroughSharedSubterms) {
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(G, "np.power(X, 2)", "X * X", RuleDecls));
  ASSERT_TRUE(addRuleFrom(G, "np.exp(np.log(X))", "X", RuleDecls));

  InputDecls Decls = {{"A", f64({5})}};
  auto P = parseProgram("np.power(np.exp(np.log(A)), 2)", Decls);
  auto Id = G.addProgram(P.Prog->getRoot());
  ASSERT_TRUE(Id);
  SaturationStats Stats = G.saturate();
  EXPECT_TRUE(Stats.Saturated);

  synth::FlopCostModel Model;
  synth::ShapeScaler Scaler;
  std::unique_ptr<Program> Best = G.extract(*Id, Model, Scaler);
  ASSERT_TRUE(Best);
  EXPECT_EQ(printProgram(*Best), "A * A");
}

TEST(EGraphTest, VariableConsistencyInPatterns) {
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({4})}};
  // X / X => pattern with a repeated variable.
  auto Lhs = parseProgram("X / X", RuleDecls);
  auto One = parseProgram("X / X + 1 - X / X", RuleDecls); // spells 1
  // Simpler: use a direct rhs of constant 1 broadcast is not expressible;
  // use rule (X + X) => 2 * X instead to test repetition.
  EGraph G2;
  ASSERT_TRUE(addRuleFrom(G2, "X + X", "2 * X", RuleDecls));
  InputDecls Decls = {{"A", f64({4})}, {"B", f64({4})}};
  auto Same = parseProgram("A + A", Decls);
  auto Diff = parseProgram("A + B", Decls);
  auto IdSame = G2.addProgram(Same.Prog->getRoot());
  auto IdDiff = G2.addProgram(Diff.Prog->getRoot());
  ASSERT_TRUE(IdSame && IdDiff);
  SaturationStats Stats = G2.saturate();
  EXPECT_TRUE(Stats.Saturated);

  // A+A merged with 2*A; A+B must stay a 2-node class (no rule applies).
  auto TwoA = parseProgram("2 * A", Decls);
  auto IdTwoA = G2.addProgram(TwoA.Prog->getRoot());
  ASSERT_TRUE(IdTwoA);
  EXPECT_TRUE(G2.sameClass(*IdSame, *IdTwoA));
  EXPECT_FALSE(G2.sameClass(*IdDiff, *IdTwoA));
  (void)Lhs;
  (void)One;
}

TEST(EGraphTest, ExtractionPreservesSemantics) {
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({3, 3})}, {"Y", f64({3, 3})}};
  ASSERT_TRUE(addRuleFrom(G, "np.diag(np.dot(X, Y))",
                          "np.sum(X * Y.T, axis=1)", RuleDecls));

  InputDecls Decls = {{"A", f64({3, 3})}, {"B", f64({3, 3})}};
  auto P = parseProgram("np.diag(np.dot(A, B))", Decls);
  auto Id = G.addProgram(P.Prog->getRoot());
  ASSERT_TRUE(Id);
  G.saturate();

  synth::FlopCostModel Model;
  synth::ShapeScaler Scaler;
  std::unique_ptr<Program> Best = G.extract(*Id, Model, Scaler);
  ASSERT_TRUE(Best);
  EXPECT_EQ(printProgram(*Best), "np.sum(A * B.T, axis=1)");

  RNG Rng(3);
  InputBinding Inputs;
  for (const auto &[Name, Type] : Decls) {
    Tensor T(Type.TShape);
    for (int64_t I = 0; I < T.getNumElements(); ++I)
      T.at(I) = Rng.positive();
    Inputs.emplace(Name, std::move(T));
  }
  EXPECT_TRUE(interpretProgram(*P.Prog, Inputs)
                  .allClose(interpretProgram(*Best, Inputs)));
}

TEST(EGraphTest, LimitsStopRunawayGrowth) {
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({4})}, {"Y", f64({4})}};
  // Commutativity is the classic exploder.
  ASSERT_TRUE(addRuleFrom(G, "X + Y", "Y + X", RuleDecls));
  ASSERT_TRUE(addRuleFrom(G, "X + Y", "(X + Y) + 0", RuleDecls));

  InputDecls Decls = {{"A", f64({4})}, {"B", f64({4})},
                      {"C", f64({4})}};
  auto P = parseProgram("A + B + C + A + B", Decls);
  auto Id = G.addProgram(P.Prog->getRoot());
  ASSERT_TRUE(Id);
  SaturationLimits Limits;
  Limits.MaxIterations = 3;
  Limits.MaxClasses = 200;
  Limits.MaxNodes = 800;
  SaturationStats Stats = G.saturate(Limits);
  EXPECT_LE(Stats.Iterations, 3);
  EXPECT_LE(G.getNumClasses(), 400u); // bounded, not exact
}

TEST(EGraphTest, RuleRejectionMirrorsRuleBook) {
  EGraph G;
  auto Lhs = parseProgram("A", {{"A", f64({4})}});
  auto Rhs = parseProgram("A + 0", {{"A", f64({4})}});
  EXPECT_FALSE(G.addRule(Lhs.Prog->getRoot(), Rhs.Prog->getRoot()));
  auto Lhs2 = parseProgram("A + A", {{"A", f64({4})}});
  auto Rhs2 = parseProgram("A * B", {{"A", f64({4})}, {"B", f64({4})}});
  EXPECT_FALSE(G.addRule(Lhs2.Prog->getRoot(), Rhs2.Prog->getRoot()));
}

TEST(EGraphTest, ExtractionUsesMeasuredCostsThroughScaler) {
  // Extraction must respect the same cost machinery as synthesis: at
  // production scale (via the scaler), the FLOP model prefers the
  // multiply form over the power form.
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(G, "np.power(X, 2)", "X * X", RuleDecls));
  InputDecls Decls = {{"A", f64({3})}};
  auto P = parseProgram("np.power(A, 2)", Decls);
  auto Id = G.addProgram(P.Prog->getRoot());
  ASSERT_TRUE(Id);
  G.saturate();
  synth::FlopCostModel Model;
  synth::ShapeScaler Scaler;
  Scaler.addMapping(3, 65536);
  std::unique_ptr<Program> Best = G.extract(*Id, Model, Scaler);
  ASSERT_TRUE(Best);
  EXPECT_EQ(printProgram(*Best), "A * A");
}

TEST(EGraphTest, NestedRedexMergesAcrossSaturationPhases) {
  // Regression for the e-matching iteration contract (EGraph.cpp,
  // ematch): a rule whose RHS instantiation merges classes must not
  // mutate anything *during* matching.  (A + 0) + 0 under X + 0 => X
  // is the canonical nested redex: both additions match in one Phase 1
  // pass over the same snapshot, and the first Phase 2 merge changes
  // the classes the second pending merge touches.  Saturation must
  // still drive the whole tower into A's class (and the debug
  // assertions in ematch verify Phase 1 stayed read-only).
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(G, "X + 0", "X", RuleDecls));

  InputDecls Decls = {{"A", f64({4})}};
  auto P = parseProgram("(A + 0) + 0", Decls);
  auto Plain = parseProgram("A", Decls);
  auto Id = G.addProgram(P.Prog->getRoot());
  auto IdA = G.addProgram(Plain.Prog->getRoot());
  ASSERT_TRUE(Id && IdA);
  EXPECT_FALSE(G.sameClass(*Id, *IdA));

  SaturationStats Stats = G.saturate();
  EXPECT_TRUE(Stats.Saturated);
  EXPECT_GE(Stats.Merges, 2); // both + 0 layers collapsed
  EXPECT_TRUE(G.sameClass(*Id, *IdA));

  // The merged class extracts to the bare input.
  synth::FlopCostModel Model;
  synth::ShapeScaler Scaler;
  std::unique_ptr<Program> Best = G.extract(*Id, Model, Scaler);
  ASSERT_TRUE(Best);
  EXPECT_EQ(printProgram(*Best), "A");
}

TEST(EGraphTest, StatsReportMatchesAndIterations) {
  EGraph G;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(G, "np.power(X, 2)", "X * X", RuleDecls));
  auto P = parseProgram("np.power(A, 2) + np.power(B, 2)",
                        {{"A", f64({4})}, {"B", f64({4})}});
  auto Id = G.addProgram(P.Prog->getRoot());
  ASSERT_TRUE(Id);
  SaturationStats Stats = G.saturate();
  EXPECT_GE(Stats.Matches, 2); // both power sites matched
  EXPECT_GE(Stats.Merges, 2);
  EXPECT_GE(Stats.Iterations, 2); // work + fixpoint confirmation
  EXPECT_TRUE(Stats.Saturated);
}
