//===- ObserveTest.cpp - Telemetry subsystem tests ------------------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observe/ contracts: trace JSON well-formedness, span/arg recording,
/// the inactive-mode zero-allocation guarantee, histogram bucket
/// boundaries, counter atomicity under a real thread pool, decision-log
/// JSONL shape, the budget checkpoint decimation (clock reads far
/// below calls; first call decisive; unlimited budgets clock-free),
/// the JsonValue ingest parser, and the progress heartbeat — including
/// the observation-only guarantee that a fast heartbeat never perturbs
/// a jobs={1,4} search result.
///
//===----------------------------------------------------------------------===//

#include "observe/DecisionLog.h"
#include "observe/Json.h"
#include "observe/JsonValue.h"
#include "observe/Metrics.h"
#include "observe/Progress.h"
#include "observe/Trace.h"
#include "support/Budget.h"
#include "support/ThreadPool.h"

#include "dsl/Parser.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <thread>

using namespace stenso;
using namespace stenso::observe;

//===----------------------------------------------------------------------===//
// Allocation counting — the zero-allocation guarantee needs a real global
// operator new override, so it lives at global scope in this binary only.
//===----------------------------------------------------------------------===//

static std::atomic<int64_t> GAllocCount{0};

void *operator new(std::size_t Size) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// A strict recursive-descent JSON syntax validator — just enough to
/// assert that every serializer in observe/ emits parseable JSON without
/// pulling in a JSON library the repo does not have.
class JsonValidator {
public:
  static bool valid(const std::string &S) {
    JsonValidator V(S);
    V.skipWs();
    if (!V.value())
      return false;
    V.skipWs();
    return V.P == V.End;
  }

private:
  explicit JsonValidator(const std::string &S)
      : P(S.data()), End(S.data() + S.size()) {}

  const char *P;
  const char *End;

  void skipWs() {
    while (P < End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (static_cast<size_t>(End - P) < N || std::strncmp(P, Lit, N) != 0)
      return false;
    P += N;
    return true;
  }
  bool string() {
    if (P >= End || *P != '"')
      return false;
    ++P;
    while (P < End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P >= End)
          return false;
        if (*P == 'u') {
          for (int I = 0; I < 4; ++I)
            if (++P >= End || !std::isxdigit(static_cast<unsigned char>(*P)))
              return false;
        }
      }
      ++P;
    }
    if (P >= End)
      return false;
    ++P; // closing quote
    return true;
  }
  bool number() {
    const char *Start = P;
    if (P < End && *P == '-')
      ++P;
    while (P < End && (std::isdigit(static_cast<unsigned char>(*P)) ||
                       *P == '.' || *P == 'e' || *P == 'E' || *P == '+' ||
                       *P == '-'))
      ++P;
    return P > Start;
  }
  bool value() {
    skipWs();
    if (P >= End)
      return false;
    switch (*P) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
  bool object() {
    ++P; // '{'
    skipWs();
    if (P < End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (P >= End || *P != ':')
        return false;
      ++P;
      if (!value())
        return false;
      skipWs();
      if (P < End && *P == ',') {
        ++P;
        continue;
      }
      if (P < End && *P == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++P; // '['
    skipWs();
    if (P < End && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (P < End && *P == ',') {
        ++P;
        continue;
      }
      if (P < End && *P == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

#if STENSO_TRACE_ENABLED

TEST(ObserveTest, TraceSessionWritesWellFormedChromeJson) {
  TraceSession Session;
  ASSERT_TRUE(Session.start());
  {
    STENSO_TRACE_NAMED_SPAN(Span, "test", "outer");
    Span.arg("count", 42);
    Span.arg("ratio", 0.5);
    Span.arg("label", std::string_view("tricky \"quoted\"\n"));
    { STENSO_TRACE_SPAN("test", "inner"); }
    STENSO_TRACE_INSTANT("test", "marker");
  }
  Session.stop();
  EXPECT_EQ(Session.eventCount(), 3u);
  EXPECT_EQ(Session.threadCount(), 1u);
  EXPECT_EQ(Session.droppedEvents(), 0u);

  std::ostringstream OS;
  Session.writeJson(OS);
  std::string Json = OS.str();
  EXPECT_TRUE(JsonValidator::valid(Json)) << Json;
  // Structural spot checks of the trace_event format.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"count\":42"), std::string::npos);
  // The arg text was escaped, not emitted raw.
  EXPECT_NE(Json.find("tricky \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_EQ(Json.find("tricky \"quoted\"\n"), std::string::npos);
}

TEST(ObserveTest, SpansFromPoolThreadsLandInOneSession) {
  TraceSession Session;
  ASSERT_TRUE(Session.start());
  constexpr size_t N = 256;
  {
    ThreadPool Pool(4);
    Pool.parallelFor(0, N, [](size_t I) {
      STENSO_TRACE_NAMED_SPAN(Span, "test", "work");
      Span.arg("i", static_cast<int64_t>(I));
    });
  } // pool drained and joined: workers are quiesced before stop()
  Session.stop();
  // parallelFor's helpers run pool-task spans too; at least the N body
  // spans must be there, from at least one thread.
  EXPECT_GE(Session.eventCount(), N);
  EXPECT_GE(Session.threadCount(), 1u);
  std::ostringstream OS;
  Session.writeJson(OS);
  EXPECT_TRUE(JsonValidator::valid(OS.str()));
}

TEST(ObserveTest, SecondSessionCannotDisplaceAnActiveOne) {
  TraceSession First;
  ASSERT_TRUE(First.start());
  TraceSession Second;
  EXPECT_FALSE(Second.start());
  { STENSO_TRACE_SPAN("test", "goes-to-first"); }
  First.stop();
  EXPECT_EQ(First.eventCount(), 1u);
  EXPECT_EQ(Second.eventCount(), 0u);
  // With the first gone, the second may now start.
  EXPECT_TRUE(Second.start());
  Second.stop();
}

TEST(ObserveTest, PerThreadCapDropsEventsInsteadOfGrowing) {
  constexpr size_t Cap = 64;
  TraceSession Session(Cap);
  ASSERT_TRUE(Session.start());
  for (size_t I = 0; I < Cap + 10; ++I)
    STENSO_TRACE_INSTANT("test", "tick");
  Session.stop();
  EXPECT_EQ(Session.eventCount(), Cap);
  EXPECT_EQ(Session.droppedEvents(), 10u);
  std::ostringstream OS;
  Session.writeJson(OS);
  std::string Json = OS.str();
  EXPECT_TRUE(JsonValidator::valid(Json));
  EXPECT_NE(Json.find("\"droppedEvents\":10"), std::string::npos);
}

#endif // STENSO_TRACE_ENABLED

TEST(ObserveTest, InactiveSpansAllocateNothing) {
  ASSERT_EQ(TraceSession::active(), nullptr)
      << "test requires no live session";
  int64_t Before = GAllocCount.load(std::memory_order_relaxed);
  for (int I = 0; I < 1000; ++I) {
    STENSO_TRACE_NAMED_SPAN(Span, "test", "inactive");
    Span.arg("i", I);
    STENSO_TRACE_INSTANT("test", "inactive-instant");
  }
  int64_t After = GAllocCount.load(std::memory_order_relaxed);
  EXPECT_EQ(After - Before, 0)
      << "trace sites must not allocate while no session is active";
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ObserveTest, HistogramBucketBoundaries) {
  Histogram H({1.0, 2.0, 4.0});
  // A value lands in the first bucket whose upper bound is >= the value;
  // above every bound it lands in the overflow bucket.
  H.record(0.5); // <= 1
  H.record(1.0); // <= 1 (boundary is inclusive)
  H.record(1.5); // <= 2
  H.record(2.0); // <= 2
  H.record(3.0); // <= 4
  H.record(4.0); // <= 4
  H.record(5.0); // overflow
  EXPECT_EQ(H.bucketCount(0), 2);
  EXPECT_EQ(H.bucketCount(1), 2);
  EXPECT_EQ(H.bucketCount(2), 2);
  EXPECT_EQ(H.bucketCount(3), 1);
  EXPECT_EQ(H.count(), 7);
  EXPECT_DOUBLE_EQ(H.sum(), 17.0);
}

TEST(ObserveTest, CountersAndHistogramsAreAtomicUnderParallelFor) {
  MetricsRegistry Registry; // private registry: no cross-test interference
  Counter &C = Registry.counter("test.parallel.counter");
  Histogram &H = Registry.histogram("test.parallel.hist", {10.0, 100.0});
  constexpr size_t Iterations = 10000;
  ThreadPool Pool(8);
  Pool.parallelFor(0, Iterations, [&](size_t I) {
    C.add(1);
    H.record(static_cast<double>(I % 3));
  });
  EXPECT_EQ(C.value(), static_cast<int64_t>(Iterations));
  EXPECT_EQ(H.count(), static_cast<int64_t>(Iterations));
  EXPECT_EQ(H.bucketCount(0), static_cast<int64_t>(Iterations));
  EXPECT_EQ(Registry.counterValue("test.parallel.counter"),
            static_cast<int64_t>(Iterations));
}

TEST(ObserveTest, RegistrySnapshotIsValidJson) {
  MetricsRegistry Registry;
  Registry.counter("a.count").add(3);
  Registry.gauge("a.gauge").set(2.5);
  Registry.histogram("a.hist", {1.0, 10.0}).record(5.0);
  std::string Json = Registry.toJson();
  EXPECT_TRUE(JsonValidator::valid(Json)) << Json;
  EXPECT_NE(Json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos);

  Registry.reset();
  EXPECT_EQ(Registry.counterValue("a.count"), 0);
  EXPECT_EQ(Registry.histogram("a.hist", {}).count(), 0);
}

TEST(ObserveTest, CounterSnapshotIsSortedByName) {
  MetricsRegistry Registry;
  Registry.counter("z.last").add(1);
  Registry.counter("a.first").add(2);
  Registry.counter("m.middle").add(3);
  auto Snapshot = Registry.counterSnapshot();
  ASSERT_EQ(Snapshot.size(), 3u);
  EXPECT_EQ(Snapshot[0].first, "a.first");
  EXPECT_EQ(Snapshot[1].first, "m.middle");
  EXPECT_EQ(Snapshot[2].first, "z.last");
}

//===----------------------------------------------------------------------===//
// Decision log
//===----------------------------------------------------------------------===//

TEST(ObserveTest, DecisionLogWritesOneValidJsonObjectPerLine) {
  DecisionLog Log;
  Log.record(-1, 0, 100.0, DecisionLog::Outcome::StubMatch, 40.0, "bench_a");
  Log.record(3, 1, 40.0, DecisionLog::Outcome::PrunedCost, 0, "bench_a");
  Log.record(7, 2, 40.0, DecisionLog::Outcome::Accepted, 12.5, "bench_b");
  Log.record(9, 1, 40.0, DecisionLog::Outcome::NoSolution, 0, "");
  EXPECT_EQ(Log.size(), 4u);

  std::ostringstream OS;
  Log.writeJsonl(OS);
  std::istringstream In(OS.str());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    EXPECT_TRUE(JsonValidator::valid(Line)) << Line;
    ++Lines;
  }
  EXPECT_EQ(Lines, 4u);
  std::string All = OS.str();
  EXPECT_NE(All.find("\"outcome\":\"stub-match\""), std::string::npos);
  EXPECT_NE(All.find("\"outcome\":\"pruned-cost\""), std::string::npos);
  EXPECT_NE(All.find("\"outcome\":\"accepted\""), std::string::npos);
  EXPECT_NE(All.find("\"tag\":\"bench_b\""), std::string::npos);

  Log.clear();
  EXPECT_EQ(Log.size(), 0u);
}

TEST(ObserveTest, DecisionLogIsThreadSafe) {
  DecisionLog Log;
  constexpr size_t PerThread = 500;
  ThreadPool Pool(4);
  Pool.parallelFor(0, 8, [&](size_t T) {
    for (size_t I = 0; I < PerThread; ++I)
      Log.record(static_cast<int32_t>(T), static_cast<int32_t>(I), 1.0,
                 DecisionLog::Outcome::Explored, 0, "hammer");
  });
  EXPECT_EQ(Log.size(), 8 * PerThread);
}

//===----------------------------------------------------------------------===//
// Budget checkpoint decimation
//===----------------------------------------------------------------------===//

TEST(ObserveTest, CheckpointDecimationKeepsClockReadsFarBelowCalls) {
  ResourceBudget Budget(/*WallSeconds=*/300.0);
  constexpr int64_t Calls = 100000;
  for (int64_t I = 0; I < Calls; ++I)
    ASSERT_TRUE(Budget.checkpoint());
  // The hot loop above runs millions of checkpoints per second, so the
  // adaptive interval must saturate and reads stay a small fraction of
  // calls.  1/8 is far above anything observed (~1/64); it just guards
  // the contract without making the test timing-sensitive.
  EXPECT_LT(Budget.getClockReads(), Calls / 8);
  EXPECT_GT(Budget.getClockReads(), 0);
  // Call accounting is batched but bounded: it lags by at most one skip
  // interval for the thread still in its loop.
  EXPECT_LE(Budget.getCheckpointCalls(), Calls);
  EXPECT_GE(Budget.getCheckpointCalls(),
            Calls - ResourceBudget::MaxSkipInterval);
}

TEST(ObserveTest, FirstCheckpointOnAThreadIsDecisive) {
  // An already-expired budget must latch on the very first checkpoint —
  // the decimation may never skip a thread's first clock read.
  ResourceBudget Budget(/*WallSeconds=*/1e-9);
  EXPECT_FALSE(Budget.checkpoint());
  EXPECT_TRUE(Budget.latched());
  EXPECT_EQ(Budget.exhaustedReason(), ErrC::Timeout);
  // And the latch stays decisive for later calls.
  EXPECT_FALSE(Budget.checkpoint());
}

TEST(ObserveTest, UnlimitedBudgetNeverReadsTheClock) {
  ResourceBudget Budget; // all dimensions unlimited
  for (int I = 0; I < 10000; ++I)
    ASSERT_TRUE(Budget.checkpoint());
  EXPECT_EQ(Budget.getClockReads(), 0);
}

TEST(ObserveTest, FreshBudgetAtSameAddressGetsFreshDecimationState) {
  // A budget destroyed mid-skip-interval must not leak its interval to a
  // new budget at the same address: the new one's first checkpoint still
  // reads the clock (the (pointer, id) key changes).
  alignas(ResourceBudget) unsigned char Storage[sizeof(ResourceBudget)];
  auto *First = new (Storage) ResourceBudget(/*WallSeconds=*/300.0);
  for (int I = 0; I < 1000; ++I)
    ASSERT_TRUE(First->checkpoint()); // earn a long skip interval
  First->~ResourceBudget();
  auto *Second = new (Storage) ResourceBudget(/*WallSeconds=*/1e-9);
  EXPECT_FALSE(Second->checkpoint()) << "stale thread-local skip state "
                                        "masked an expired budget";
  EXPECT_TRUE(Second->latched());
  Second->~ResourceBudget();
}

//===----------------------------------------------------------------------===//
// JSON helpers
//===----------------------------------------------------------------------===//

TEST(ObserveTest, JsonHelpersEscapeAndFormat) {
  EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(jsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(jsonQuote(std::string_view("ctrl\x01", 5)), "\"ctrl\\u0001\"");
  EXPECT_EQ(jsonNumber(2.5), "2.5");
  // JSON has no inf/nan; they degrade to null rather than corrupt output.
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  // %.17g round-trips doubles exactly.
  double Tricky = 0.1 + 0.2;
  EXPECT_EQ(std::stod(jsonNumber(Tricky)), Tricky);
}

//===----------------------------------------------------------------------===//
// JsonValue — the ingest side must round-trip every emitter above
//===----------------------------------------------------------------------===//

TEST(ObserveTest, JsonValueParsesScalarsAndContainers) {
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(
      R"({"i":42,"f":2.5,"neg":-1e-3,"s":"hi","t":true,"n":null,)"
      R"("arr":[1,2,3],"nested":{"k":"v"}})",
      V, Error))
      << Error;
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.find("i")->intValue(), 42);
  EXPECT_DOUBLE_EQ(V.find("f")->numberValue(), 2.5);
  EXPECT_DOUBLE_EQ(V.find("neg")->numberValue(), -1e-3);
  EXPECT_EQ(V.find("s")->stringValue(), "hi");
  EXPECT_TRUE(V.find("t")->boolValue());
  EXPECT_TRUE(V.find("n")->isNull());
  ASSERT_EQ(V.find("arr")->array().size(), 3u);
  EXPECT_EQ(V.find("nested")->find("k")->stringValue(), "v");
  EXPECT_EQ(V.find("absent"), nullptr);
  // Tolerant accessors for optional stream fields.
  EXPECT_DOUBLE_EQ(V.numberOr("i", 0), 42.0);
  EXPECT_DOUBLE_EQ(V.numberOr("absent", 7.5), 7.5);
  EXPECT_EQ(V.stringOr("absent", "dflt"), "dflt");
  EXPECT_TRUE(V.boolOr("t", false));
}

TEST(ObserveTest, JsonValueRoundTripsTheEmitters) {
  // jsonQuote's escapes must come back as the original bytes.
  std::string Original = "a\"b\\c\nd\tctrl:\x01 end";
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(jsonQuote(Original), V, Error)) << Error;
  EXPECT_EQ(V.stringValue(), Original);
  // \uXXXX escapes decode to UTF-8.
  ASSERT_TRUE(parseJson(R"("pi: π")", V, Error)) << Error;
  EXPECT_EQ(V.stringValue(), "pi: \xcf\x80");
  // A registry snapshot parses back whole.
  MetricsRegistry Registry;
  Registry.counter("rt.count").add(3);
  Registry.histogram("rt.hist", {1.0}).record(0.5);
  ASSERT_TRUE(parseJson(Registry.toJson(), V, Error)) << Error;
  const JsonValue *Counters = V.find("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_EQ(Counters->find("rt.count")->intValue(), 3);
}

TEST(ObserveTest, JsonValueErrorsCarryPositions) {
  JsonValue V;
  std::string Error;
  // A torn object on line 2: errors must name where.
  EXPECT_FALSE(parseJson("{\"ok\":1,\n\"torn\":", V, Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
  // Trailing garbage after a complete value is malformed, not ignored.
  EXPECT_FALSE(parseJson("{} trailing", V, Error));
  // JSONL reports the first bad line by number.
  std::vector<JsonValue> Lines;
  EXPECT_TRUE(parseJsonl("{\"a\":1}\n\n{\"b\":2}\n", Lines, Error)) << Error;
  EXPECT_EQ(Lines.size(), 2u);
  EXPECT_FALSE(parseJsonl("{\"a\":1}\n{\"b\":\n", Lines, Error));
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Progress heartbeat
//===----------------------------------------------------------------------===//

TEST(ObserveTest, ProgressMonitorEmitsParseableHeartbeats) {
  std::ostringstream OS;
  ProgressOptions Opts;
  Opts.IntervalMs = 5;
  Opts.Tag = "unit";
  ProgressMonitor Monitor(OS, Opts);
  std::atomic<int64_t> Work{0};
  Monitor.setSampler([&] {
    ProgressSample S;
    S.Candidates = Work.load(std::memory_order_relaxed);
    S.Nodes = 10;
    S.NodeCap = 100;
    S.BestCost = 42.0;
    S.HasBest = true;
    S.CacheHits = 9;
    S.CacheMisses = 1;
    S.Jobs = 4;
    return S;
  });
  Monitor.setQueueProbe([] { return int64_t(7); });
  Monitor.start();
  for (int I = 0; I < 8; ++I) {
    Work.fetch_add(100, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Monitor.stop();
  ASSERT_GE(Monitor.recordsWritten(), 2);

  std::vector<JsonValue> Records;
  std::string Error;
  ASSERT_TRUE(parseJsonl(OS.str(), Records, Error)) << Error;
  ASSERT_EQ(static_cast<int64_t>(Records.size()), Monitor.recordsWritten());
  int64_t PrevSeq = -1;
  double PrevElapsed = -1;
  for (size_t I = 0; I < Records.size(); ++I) {
    const JsonValue &R = Records[I];
    EXPECT_GT(R.find("seq")->intValue(), PrevSeq);
    PrevSeq = R.find("seq")->intValue();
    EXPECT_GE(R.find("elapsed")->numberValue(), PrevElapsed);
    PrevElapsed = R.find("elapsed")->numberValue();
    EXPECT_EQ(R.stringOr("tag", ""), "unit");
    EXPECT_EQ(R.find("jobs")->intValue(), 4);
    EXPECT_DOUBLE_EQ(R.numberOr("best_cost", 0), 42.0);
    EXPECT_DOUBLE_EQ(R.numberOr("cache_hit_rate", 0), 0.9);
    EXPECT_EQ(R.find("queue_depth")->intValue(), 7);
    // Only the very last record is final.
    EXPECT_EQ(R.boolOr("final", false), I + 1 == Records.size());
  }
}

TEST(ObserveTest, ProgressMonitorOmitsUnknownFields) {
  std::ostringstream OS;
  ProgressOptions Opts;
  Opts.IntervalMs = 1000; // only the final record fires
  ProgressMonitor Monitor(OS, Opts);
  Monitor.start(); // no sampler installed at all
  Monitor.stop();
  std::vector<JsonValue> Records;
  std::string Error;
  ASSERT_TRUE(parseJsonl(OS.str(), Records, Error)) << Error;
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_TRUE(Records[0].boolOr("final", false));
  // No sampler -> no best cost, no caps, no ETA.
  EXPECT_EQ(Records[0].find("best_cost"), nullptr);
  EXPECT_EQ(Records[0].find("node_cap"), nullptr);
  EXPECT_EQ(Records[0].find("eta_seconds"), nullptr);
}

TEST(ObserveTest, ProgressMonitorStopIsIdempotentAndSamplerClearable) {
  std::ostringstream OS;
  ProgressOptions Opts;
  Opts.IntervalMs = 1;
  ProgressMonitor Monitor(OS, Opts);
  {
    // The sampler dies right after being cleared: if a stale in-flight
    // call could still reach it, this would be use-after-scope (and the
    // sanitizer matrix would catch it).
    std::atomic<int64_t> Local{5};
    Monitor.setSampler([&Local] {
      ProgressSample S;
      S.Candidates = Local.load(std::memory_order_relaxed);
      return S;
    });
    Monitor.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Monitor.setSampler(nullptr);
  }
  Monitor.stop();
  int64_t After = Monitor.recordsWritten();
  Monitor.stop(); // idempotent: no second final record
  EXPECT_EQ(Monitor.recordsWritten(), After);
  std::vector<JsonValue> Records;
  std::string Error;
  ASSERT_TRUE(parseJsonl(OS.str(), Records, Error)) << Error;
  EXPECT_EQ(static_cast<int64_t>(Records.size()), After);
}

TEST(ObserveTest, ProgressMonitorBadPathIsNonFatal) {
  ProgressMonitor Monitor("/nonexistent-dir/progress.jsonl",
                          ProgressOptions());
  EXPECT_FALSE(Monitor.openedOk());
  // Still safe to run; records are dropped.
  Monitor.start();
  Monitor.stop();
}

//===----------------------------------------------------------------------===//
// Observation-only: a fast heartbeat must not perturb the search
//===----------------------------------------------------------------------===//

namespace {

synth::SynthesisResult runLogExp(int Jobs, observe::ProgressMonitor *Monitor) {
  dsl::TensorType Vec4{DType::Float64, Shape({4})};
  dsl::InputDecls Decls = {{"A", Vec4}, {"B", Vec4}};
  auto P = dsl::parseProgram("np.exp(np.log(A + B))", Decls);
  EXPECT_TRUE(P) << P.Error;
  synth::SynthesisConfig Config;
  Config.CostModelName = "flops";
  Config.TimeoutSeconds = 300;
  Config.Jobs = Jobs;
  Config.Progress = Monitor;
  return synth::Synthesizer(Config).run(*P.Prog);
}

} // namespace

TEST(ObserveTest, HeartbeatDoesNotPerturbSearch) {
  // DESIGN.md §9: attaching a monitor is observation-only.  A 10ms
  // heartbeat hammering the sampler during both a sequential and a
  // parallel search must leave the entire result contract untouched.
  for (int Jobs : {1, 4}) {
    synth::SynthesisResult Bare = runLogExp(Jobs, nullptr);
    std::ostringstream OS;
    ProgressOptions Opts;
    Opts.IntervalMs = 10;
    ProgressMonitor Monitor(OS, Opts);
    Monitor.start();
    synth::SynthesisResult Watched = runLogExp(Jobs, &Monitor);
    Monitor.stop();

    EXPECT_EQ(Bare.Improved, Watched.Improved) << "jobs=" << Jobs;
    EXPECT_EQ(Bare.OptimizedSource, Watched.OptimizedSource)
        << "jobs=" << Jobs;
    EXPECT_EQ(Bare.OriginalCost, Watched.OriginalCost) << "jobs=" << Jobs;
    EXPECT_EQ(Bare.OptimizedCost, Watched.OptimizedCost) << "jobs=" << Jobs;
    EXPECT_EQ(Bare.Abort, Watched.Abort) << "jobs=" << Jobs;
    EXPECT_EQ(Bare.TimedOut, Watched.TimedOut) << "jobs=" << Jobs;

    // The stream is real: a final record exists and carries the answer.
    std::vector<JsonValue> Records;
    std::string Error;
    ASSERT_TRUE(parseJsonl(OS.str(), Records, Error)) << Error;
    ASSERT_FALSE(Records.empty());
    const JsonValue &Last = Records.back();
    EXPECT_TRUE(Last.boolOr("final", false));
    EXPECT_NEAR(Last.numberOr("best_cost", -1), Watched.OptimizedCost,
                1e-9 * Watched.OptimizedCost)
        << "jobs=" << Jobs;
  }
}
