//===- RobustnessTest.cpp - Recoverable errors, budgets, fault injection --==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The robustness layer end to end: Expected<T> round-trips, cooperative
/// ResourceBudget expiry observed inside hole solving, and deterministic
/// STENSO_FAULT-style injection at every site with the synthesizer
/// degrading to the original program instead of aborting.
///
//===----------------------------------------------------------------------===//

#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "observe/DecisionLog.h"
#include "observe/Metrics.h"
#include "persist/StensoStore.h"
#include "support/Budget.h"
#include "support/FaultInjection.h"
#include "support/Result.h"
#include "synth/HoleSolver.h"
#include "synth/Synthesizer.h"
#include "verify/Equivalence.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::synth;
using symexec::SymTensor;

namespace {

TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

/// Disarms all fault sites when a test ends, whatever happens in between.
class FaultGuard {
public:
  FaultGuard() { EXPECT_TRUE(FaultInjector::instance().configure("")); }
  ~FaultGuard() { (void)FaultInjector::instance().configure(""); }
  Status arm(const std::string &Spec) {
    return FaultInjector::instance().configure(Spec);
  }
};

SynthesisConfig fastConfig() {
  SynthesisConfig Config;
  Config.CostModelName = "flops";
  // Generous: the searches below finish in seconds on a plain build, but
  // sanitizer-instrumented runs (STENSO_SANITIZE) are ~10x slower and
  // must not trip the wall clock.
  Config.TimeoutSeconds = 300;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Expected<T> / StensoError
//===----------------------------------------------------------------------===//

TEST(RobustnessTest, ExpectedRoundTripsValues) {
  Expected<int> Value(42);
  ASSERT_TRUE(Value.hasValue());
  ASSERT_TRUE(Value.has_value());
  EXPECT_EQ(*Value, 42);
  EXPECT_EQ(Value.takeValue(), 42);

  Expected<std::string> Str(std::string("hi"));
  ASSERT_TRUE(Str);
  EXPECT_EQ(Str->size(), 2u);
}

TEST(RobustnessTest, ExpectedRoundTripsErrors) {
  Expected<int> Err(makeError(ErrC::NoSolution, "nothing to see"));
  ASSERT_FALSE(Err);
  EXPECT_EQ(Err.error().code(), ErrC::NoSolution);
  EXPECT_EQ(Err.error().message(), "nothing to see");
  StensoError Taken = Err.takeError();
  EXPECT_EQ(Taken.code(), ErrC::NoSolution);
}

TEST(RobustnessTest, ErrorContextChainsInnermostFirst) {
  StensoError E = makeError(ErrC::ArithmeticOverflow, "boom")
                      .withContext("solving hole")
                      .withContext("synthesizing");
  ASSERT_EQ(E.context().size(), 2u);
  EXPECT_EQ(E.context()[0], "solving hole");
  EXPECT_EQ(E.context()[1], "synthesizing");
  std::string Printed = E.toString();
  EXPECT_NE(Printed.find("arithmetic-overflow"), std::string::npos);
  EXPECT_NE(Printed.find("boom"), std::string::npos);
  EXPECT_NE(Printed.find("while solving hole"), std::string::npos);
}

TEST(RobustnessTest, StatusDefaultIsSuccess) {
  Status Ok;
  EXPECT_TRUE(Ok);
  Status Bad = makeError(ErrC::InvalidArgument, "nope");
  EXPECT_FALSE(Bad);
  EXPECT_EQ(Bad.error().code(), ErrC::InvalidArgument);
}

TEST(RobustnessTest, RecoverableScopeLatchesFirstErrorOnly) {
  RecoverableErrorScope Scope;
  EXPECT_FALSE(Scope.hasError());
  EXPECT_TRUE(inRecoverableScope());
  raiseOrFatal(ErrC::DivisionByZero, "first");
  raiseOrFatal(ErrC::DomainError, "second");
  ASSERT_TRUE(Scope.hasError());
  EXPECT_EQ(Scope.getError().code(), ErrC::DivisionByZero);
  EXPECT_EQ(Scope.getError().message(), "first");
  // takeError re-arms the scope.
  (void)Scope.takeError();
  EXPECT_FALSE(Scope.hasError());
  raiseOrFatal(ErrC::DomainError, "third");
  EXPECT_EQ(Scope.getError().code(), ErrC::DomainError);
}

TEST(RobustnessTest, NestedScopesIsolateErrors) {
  RecoverableErrorScope Outer;
  {
    RecoverableErrorScope Inner;
    raiseOrFatal(ErrC::ShapeMismatch, "inner only");
    EXPECT_TRUE(Inner.hasError());
  }
  EXPECT_FALSE(Outer.hasError());
}

TEST(RobustnessTest, RationalOverflowIsRecoverable) {
  RecoverableErrorScope Scope;
  Rational Big(INT64_MAX / 2);
  Rational Poison = Big * Rational(4); // overflows int64
  (void)Poison;
  ASSERT_TRUE(Scope.hasError());
  EXPECT_EQ(Scope.getError().code(), ErrC::ArithmeticOverflow);
}

TEST(RobustnessTest, DivisionByZeroIsRecoverable) {
  RecoverableErrorScope Scope;
  Rational Poison = Rational(1) / Rational(0);
  EXPECT_TRUE(Poison.isZero()); // poison value
  ASSERT_TRUE(Scope.hasError());
  EXPECT_EQ(Scope.getError().code(), ErrC::DivisionByZero);
}

TEST(RobustnessTest, InterpreterUnboundInputIsRecoverable) {
  auto P = parseProgram("A + A", {{"A", f64({2})}});
  ASSERT_TRUE(P) << P.Error;
  Expected<Tensor> Out = interpretProgramChecked(*P.Prog, {});
  ASSERT_FALSE(Out);
  EXPECT_EQ(Out.error().code(), ErrC::UnboundInput);
}

//===----------------------------------------------------------------------===//
// ResourceBudget
//===----------------------------------------------------------------------===//

TEST(RobustnessTest, BudgetLatchesOnNodeCap) {
  ResourceBudget::Limits L;
  L.MaxSymbolicNodes = 10;
  ResourceBudget Budget(L);
  EXPECT_TRUE(Budget.checkpoint());
  Budget.chargeSymbolicNodes(10);
  EXPECT_FALSE(Budget.latched());
  Budget.chargeSymbolicNodes(1);
  EXPECT_TRUE(Budget.latched());
  EXPECT_FALSE(Budget.checkpoint());
  EXPECT_EQ(Budget.exhaustedReason(), ErrC::BudgetExhausted);
  // Latching is permanent.
  EXPECT_FALSE(Budget.checkpoint());
}

TEST(RobustnessTest, BudgetWallClockLatchesAsTimeout) {
  ResourceBudget Budget(1e-9); // effectively already expired
  EXPECT_TRUE(Budget.exhausted());
  EXPECT_EQ(Budget.exhaustedReason(), ErrC::Timeout);
  EXPECT_EQ(Budget.toError().code(), ErrC::Timeout);
}

TEST(RobustnessTest, UnlimitedBudgetNeverExpires) {
  ResourceBudget Budget;
  for (int I = 0; I < 1000; ++I)
    EXPECT_TRUE(Budget.checkpoint());
  Budget.chargeSymbolicNodes(1 << 20);
  Budget.chargeSolverCall();
  EXPECT_FALSE(Budget.exhausted());
}

TEST(RobustnessTest, BudgetExpiryObservedInsideHoleSolve) {
  // Build a real sketch library and drive the solver with a solver-call
  // cap of one: the first solve is answered, the second unwinds with the
  // budget's error.
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  auto P = parseProgram("A * B + B", Decls);
  ASSERT_TRUE(P) << P.Error;
  sym::ExprContext Ctx;
  symexec::SymBinding Bindings = symexec::makeInputBindings(*P.Prog, Ctx);
  SymTensor Phi = symexec::symbolicExecute(P.Prog->getRoot(), Ctx, Bindings);
  FlopCostModel Model;
  ShapeScaler Scaler;
  SketchLibrary Library(*P.Prog, Ctx, Bindings, Model, Scaler,
                        SketchLibrary::Config());
  ASSERT_FALSE(Library.getSketches().empty());

  ResourceBudget::Limits L;
  L.MaxSolverCalls = 1;
  ResourceBudget Budget(L);
  HoleSolver Solver(Ctx, Bindings);
  Solver.setBudget(&Budget);

  const Sketch &Sk = Library.getSketches().front();
  Expected<SymTensor> First = Solver.solve(Sk, Phi);
  (void)First; // outcome depends on the sketch; the budget does not
  Expected<SymTensor> Second = Solver.solve(Sk, Phi);
  ASSERT_FALSE(Second.hasValue());
  EXPECT_EQ(Second.error().code(), ErrC::BudgetExhausted);
  EXPECT_TRUE(Budget.latched());
}

TEST(RobustnessTest, SynthesizerRespectsNodeCap) {
  auto P = parseProgram("np.diag(np.dot(A, B))",
                        {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  ASSERT_TRUE(P) << P.Error;
  SynthesisConfig Config = fastConfig();
  Config.MaxSymbolicNodes = 50; // far below what the search needs
  SynthesisResult Result = Synthesizer(Config).run(*P.Prog);
  EXPECT_EQ(Result.Abort, AbortReason::BudgetExceeded);
  EXPECT_FALSE(Result.TimedOut);
  // Well-formed degradation: the original program is emitted.
  EXPECT_FALSE(Result.OptimizedSource.empty());
  EXPECT_EQ(Result.OptimizedCost, Result.OriginalCost);
}

TEST(RobustnessTest, SynthesizerCompletesUnderGenerousBudget) {
  auto P = parseProgram("np.diag(np.dot(A, B))",
                        {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  ASSERT_TRUE(P) << P.Error;
  SynthesisConfig Config = fastConfig();
  SynthesisResult Result = Synthesizer(Config).run(*P.Prog);
  EXPECT_EQ(Result.Abort, AbortReason::None);
  EXPECT_TRUE(Result.Improved);
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

TEST(RobustnessTest, MalformedFaultSpecIsRejectedNotFatal) {
  FaultGuard Guard;
  EXPECT_FALSE(Guard.arm("holesolver"));
  EXPECT_FALSE(Guard.arm("bogus-site:1.0:1"));
  EXPECT_FALSE(Guard.arm("holesolver:notarate:1"));
  EXPECT_TRUE(Guard.arm("holesolver:0.5:1"));
}

TEST(RobustnessTest, FaultsRequireARecoveryScope) {
  FaultGuard Guard;
  ASSERT_TRUE(Guard.arm("holesolver:1.0:42"));
  EXPECT_FALSE(maybeInjectFault(FaultSite::HoleSolve));
  RecoverableErrorScope Scope;
  EXPECT_TRUE(maybeInjectFault(FaultSite::HoleSolve));
  ASSERT_TRUE(Scope.hasError());
  EXPECT_EQ(Scope.getError().code(), ErrC::FaultInjected);
}

TEST(RobustnessTest, FaultSequencesAreDeterministic) {
  FaultGuard Guard;
  auto Sample = [&] {
    EXPECT_TRUE(Guard.arm("tensor-op:0.5:1234"));
    std::vector<bool> Fired;
    RecoverableErrorScope Scope;
    for (int I = 0; I < 64; ++I) {
      Fired.push_back(maybeInjectFault(FaultSite::TensorOp));
      if (Scope.hasError())
        (void)Scope.takeError(); // re-arm for the next draw
    }
    return Fired;
  };
  std::vector<bool> A = Sample();
  std::vector<bool> B = Sample();
  EXPECT_EQ(A, B);
  // A 0.5 rate over 64 draws fires at least once and misses at least once.
  EXPECT_NE(std::count(A.begin(), A.end(), true), 0);
  EXPECT_NE(std::count(A.begin(), A.end(), false), 0);
}

TEST(RobustnessTest, HoleSolverFaultDegradesSynthesisToOriginal) {
  FaultGuard Guard;
  ASSERT_TRUE(Guard.arm("holesolver:1.0:42"));
  auto P = parseProgram("np.diag(np.dot(A, B))",
                        {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  ASSERT_TRUE(P) << P.Error;
  SynthesisResult Result = Synthesizer(fastConfig()).run(*P.Prog);
  EXPECT_FALSE(Result.Improved);
  EXPECT_EQ(Result.Abort, AbortReason::InternalError);
  EXPECT_GT(Result.Stats.PrunedByError, 0);
  EXPECT_FALSE(Result.OptimizedSource.empty());
  EXPECT_GT(FaultInjector::instance().firedCount(FaultSite::HoleSolve), 0);
}

TEST(RobustnessTest, SymbolicEvalFaultDegradesSynthesisToOriginal) {
  FaultGuard Guard;
  ASSERT_TRUE(Guard.arm("symbolic-eval:1.0:42"));
  auto P = parseProgram("np.diag(np.dot(A, B))",
                        {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  ASSERT_TRUE(P) << P.Error;
  SynthesisResult Result = Synthesizer(fastConfig()).run(*P.Prog);
  EXPECT_FALSE(Result.Improved);
  EXPECT_EQ(Result.Abort, AbortReason::InternalError);
  EXPECT_FALSE(Result.OptimizedSource.empty());
  EXPECT_GT(FaultInjector::instance().firedCount(FaultSite::SymbolicEval), 0);
}

// A run that stops early must still flush its telemetry: the metrics
// registry sees the run (and its abort), and the decision log carries
// the degradation record.  Guards the publish-on-every-exit-path
// contract that stenso-report's ingestion relies on.
TEST(RobustnessTest, TelemetrySurvivesBudgetAbort) {
  observe::MetricsRegistry &M = observe::MetricsRegistry::global();
  int64_t RunsBefore = M.counterValue("synth.runs");
  int64_t AbortedBefore = M.counterValue("synth.aborted");
  auto P = parseProgram("np.diag(np.dot(A, B))",
                        {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  ASSERT_TRUE(P) << P.Error;
  SynthesisConfig Config = fastConfig();
  Config.MaxSymbolicNodes = 50; // far below what the search needs
  SynthesisResult Result = Synthesizer(Config).run(*P.Prog);
  ASSERT_EQ(Result.Abort, AbortReason::BudgetExceeded);
  EXPECT_EQ(M.counterValue("synth.runs"), RunsBefore + 1);
  EXPECT_EQ(M.counterValue("synth.aborted"), AbortedBefore + 1);
}

TEST(RobustnessTest, TelemetrySurvivesFaultDegradation) {
  FaultGuard Guard;
  // symbolic-eval at rate 1.0 kills spec construction itself — the
  // earliest exit the synthesizer has.
  ASSERT_TRUE(Guard.arm("symbolic-eval:1.0:42"));
  observe::MetricsRegistry &M = observe::MetricsRegistry::global();
  int64_t RunsBefore = M.counterValue("synth.runs");
  int64_t AbortedBefore = M.counterValue("synth.aborted");
  auto P = parseProgram("np.diag(np.dot(A, B))",
                        {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  ASSERT_TRUE(P) << P.Error;
  observe::DecisionLog Log;
  SynthesisConfig Config = fastConfig();
  Config.Decisions = &Log;
  SynthesisResult Result = Synthesizer(Config).run(*P.Prog);
  ASSERT_EQ(Result.Abort, AbortReason::InternalError);
  EXPECT_EQ(M.counterValue("synth.runs"), RunsBefore + 1);
  EXPECT_EQ(M.counterValue("synth.aborted"), AbortedBefore + 1);
  // The degraded run leaves a pruned-error decision behind, so a log
  // that ends here still explains *why* the search stopped.
  std::ostringstream OS;
  Log.writeJsonl(OS);
  EXPECT_NE(OS.str().find("pruned-error"), std::string::npos) << OS.str();
}

TEST(RobustnessTest, TensorOpFaultSurfacesThroughCheckedInterpreter) {
  FaultGuard Guard;
  ASSERT_TRUE(Guard.arm("tensor-op:1.0:7"));
  auto P = parseProgram("A + A", {{"A", f64({2})}});
  ASSERT_TRUE(P) << P.Error;
  InputBinding Inputs;
  Inputs.emplace("A", Tensor::full(Shape({2}), 1.0));
  Expected<Tensor> Out = interpretProgramChecked(*P.Prog, Inputs);
  ASSERT_FALSE(Out);
  EXPECT_EQ(Out.error().code(), ErrC::FaultInjected);
  EXPECT_GT(FaultInjector::instance().firedCount(FaultSite::TensorOp), 0);
}

TEST(RobustnessTest, VerifierFaultSurfacesAsError) {
  FaultGuard Guard;
  ASSERT_TRUE(Guard.arm("verifier:1.0:9"));
  InputDecls Decls = {{"A", f64({2})}};
  auto PA = parseProgram("A", Decls);
  auto PB = parseProgram("A + 0", Decls);
  ASSERT_TRUE(PA && PB);
  Expected<verify::Verdict> V = verify::checkEquivalence(*PA.Prog, *PB.Prog);
  ASSERT_FALSE(V);
  EXPECT_EQ(V.error().code(), ErrC::FaultInjected);
  EXPECT_GT(FaultInjector::instance().firedCount(FaultSite::Verifier), 0);
}

TEST(RobustnessTest, ParallelSynthesisDegradesUnderFaultsLikeSequential) {
  // Every hole solve fails on all four workers at once: the run must
  // degrade to the original program (never hang, never return a partial
  // candidate) with the same abort reason, the same emitted source, and
  // the same error-prune count as the sequential engine.  Rate 1.0
  // short-circuits the injector's RNG draw, so the fire sequence — and
  // with it the counters — is thread-interleaving-free.
  FaultGuard Guard;
  const std::vector<std::pair<std::string, InputDecls>> Programs = {
      {"A + A + A + A + A", {{"A", f64({3})}}},
      {"np.diag(np.dot(A, B))", {{"A", f64({3, 3})}, {"B", f64({3, 3})}}},
      {"np.transpose(np.transpose(A))", {{"A", f64({3, 4})}}},
      {"np.power(A, 2)", {{"A", f64({3, 4})}}},
      {"np.exp(np.log(A + B))", {{"A", f64({3})}, {"B", f64({3})}}},
  };
  for (const auto &[Source, Decls] : Programs) {
    ASSERT_TRUE(Guard.arm("holesolver:1.0:42"));
    auto P = parseProgram(Source, Decls);
    ASSERT_TRUE(P) << P.Error;
    auto RunWith = [&](int Jobs) {
      SynthesisConfig Config = fastConfig();
      Config.Jobs = Jobs;
      return Synthesizer(Config).run(*P.Prog);
    };
    SynthesisResult Sequential = RunWith(1);
    SynthesisResult Parallel = RunWith(4);
    for (const SynthesisResult *R : {&Sequential, &Parallel}) {
      EXPECT_FALSE(R->Improved) << Source;
      EXPECT_EQ(R->Abort, AbortReason::InternalError) << Source;
      EXPECT_GT(R->Stats.PrunedByError, 0) << Source;
      EXPECT_EQ(R->OptimizedSource, Sequential.OptimizedSource) << Source;
      EXPECT_EQ(R->OptimizedCost, R->OriginalCost) << Source;
    }
    // Each abandoned branch is counted exactly once whatever the
    // concurrency — a racy counter would double-count (or drop) prunes.
    // The engines split the branches differently (sequential's `>=` cost
    // prune cuts equal-cost branches before the solver; parallel's
    // strict `>` lets them reach the analysis oracle and then the
    // solver, where they fault), but with every solve failing each
    // branch lands in exactly one of the three counters — cost,
    // analysis, or error — so the sum is engine-invariant.
    EXPECT_EQ(Parallel.Stats.PrunedByError + Parallel.Stats.PrunedByCost +
                  Parallel.Stats.PrunedByAnalysis,
              Sequential.Stats.PrunedByError + Sequential.Stats.PrunedByCost +
                  Sequential.Stats.PrunedByAnalysis)
        << Source;
    // And the parallel run is repeatable, not merely plausible.
    SynthesisResult Again = RunWith(4);
    EXPECT_EQ(Again.OptimizedSource, Parallel.OptimizedSource) << Source;
    EXPECT_EQ(Again.Abort, Parallel.Abort) << Source;
    EXPECT_EQ(Again.Stats.PrunedByError, Parallel.Stats.PrunedByError)
        << Source;
  }
  EXPECT_GT(FaultInjector::instance().firedCount(FaultSite::HoleSolve), 0);
}

TEST(RobustnessTest, SynthesisIsCleanAfterFaultsDisarm) {
  // Degradation must not leave latent state behind: after disarming, the
  // same synthesis succeeds again.
  FaultGuard Guard;
  ASSERT_TRUE(Guard.arm("holesolver:1.0:42"));
  auto P = parseProgram("np.diag(np.dot(A, B))",
                        {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  ASSERT_TRUE(P) << P.Error;
  SynthesisResult Degraded = Synthesizer(fastConfig()).run(*P.Prog);
  EXPECT_FALSE(Degraded.Improved);
  ASSERT_TRUE(Guard.arm(""));
  SynthesisResult Clean = Synthesizer(fastConfig()).run(*P.Prog);
  EXPECT_TRUE(Clean.Improved);
  EXPECT_EQ(Clean.Abort, AbortReason::None);
}

//===----------------------------------------------------------------------===//
// Persistent-store degradation: a broken store must never change the
// synthesis result, the abort reason, or crash — it only gets colder.
//===----------------------------------------------------------------------===//

namespace {

/// A unique scratch directory, removed on scope exit.
class StoreTempDir {
public:
  StoreTempDir() {
    std::string Template = (std::filesystem::temp_directory_path() /
                            "stenso-robust-XXXXXX")
                               .string();
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    const char *P = mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Dir = P ? P : Template;
  }
  ~StoreTempDir() {
    std::error_code EC;
    std::filesystem::permissions(Dir,
                                 std::filesystem::perms::owner_all,
                                 std::filesystem::perm_options::add, EC);
    std::filesystem::remove_all(Dir, EC);
  }
  std::string sub(const std::string &Name) const {
    return (std::filesystem::path(Dir) / Name).string();
  }

private:
  std::string Dir;
};

/// One cheap full search that still exercises the hole solver in the
/// sequential engine (log-space programs win by stub match and never
/// call it), optionally through a store and a decision log.
SynthesisResult runStoreProgram(persist::StensoStore *Store,
                                observe::DecisionLog *Decisions = nullptr) {
  auto P = parseProgram("np.sum(A * w, axis=0)",
                        {{"A", f64({3, 4})}, {"w", f64({})}});
  EXPECT_TRUE(P) << P.Error;
  SynthesisConfig Config = fastConfig();
  Config.Store = Store;
  Config.Decisions = Decisions;
  return Synthesizer(Config).run(*P.Prog);
}

void expectStoreRunMatches(const SynthesisResult &Baseline,
                           const SynthesisResult &WithStore,
                           const char *What) {
  EXPECT_EQ(WithStore.OptimizedSource, Baseline.OptimizedSource) << What;
  EXPECT_EQ(WithStore.OptimizedCost, Baseline.OptimizedCost) << What;
  EXPECT_EQ(WithStore.Abort, Baseline.Abort) << What;
  EXPECT_EQ(WithStore.Improved, Baseline.Improved) << What;
}

} // namespace

TEST(RobustnessTest, StoreUnusableDirectoryKeepsResultIdentical) {
  SynthesisResult Baseline = runStoreProgram(nullptr);
  ASSERT_EQ(Baseline.Abort, AbortReason::None);
  StoreTempDir Tmp;
  // A plain file where the store wants its directory: creation fails and
  // the store must run in-memory-only, not crash and not write anywhere.
  { std::ofstream(Tmp.sub("occupied")) << "not a directory"; }
  persist::StensoStore::Options O;
  O.Dir = Tmp.sub("occupied") + "/store";
  persist::StensoStore Store(O);
  EXPECT_FALSE(Store.onDisk());
  SynthesisResult WithStore = runStoreProgram(&Store);
  expectStoreRunMatches(Baseline, WithStore, "unusable-dir");
  EXPECT_GT(WithStore.Stats.StorePuts, 0); // in-memory cache still works
}

TEST(RobustnessTest, StoreReadOnlyDirectoryServesWithoutWriting) {
  SynthesisResult Baseline = runStoreProgram(nullptr);
  StoreTempDir Tmp;
  std::string Dir = Tmp.sub("store");
  {
    persist::StensoStore::Options O;
    O.Dir = Dir;
    persist::StensoStore Warmup(O);
    SynthesisResult Cold = runStoreProgram(&Warmup);
    expectStoreRunMatches(Baseline, Cold, "cold-populate");
  }
  // Revoke write permission.  Root (common in CI containers) bypasses
  // permission bits, so the deterministic half of this test forces
  // Options.ReadOnly; the chmod still exercises the probe for unprivileged
  // runs.
  std::error_code EC;
  std::filesystem::permissions(Dir,
                               std::filesystem::perms::owner_read |
                                   std::filesystem::perms::owner_exec,
                               std::filesystem::perm_options::replace, EC);
  uintmax_t DiskBefore = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.is_regular_file())
      DiskBefore += E.file_size();
  {
    persist::StensoStore::Options O;
    O.Dir = Dir;
    O.ReadOnly = true;
    persist::StensoStore Store(O);
    EXPECT_TRUE(Store.readOnly());
    SynthesisResult Warm = runStoreProgram(&Store);
    expectStoreRunMatches(Baseline, Warm, "read-only-warm");
    EXPECT_GT(Warm.Stats.StoreHits, 0);
  }
  std::filesystem::permissions(Dir, std::filesystem::perms::owner_all,
                               std::filesystem::perm_options::add, EC);
  uintmax_t DiskAfter = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.is_regular_file())
      DiskAfter += E.file_size();
  EXPECT_EQ(DiskAfter, DiskBefore);
}

TEST(RobustnessTest, StoreWriteFailureLatchesInMemoryOnlyOnce) {
  SynthesisResult Baseline = runStoreProgram(nullptr);
  // ENOSPC-style: every durable append fails.  The store must retry,
  // then latch degraded in-memory-only mode with one diagnostic line —
  // and the search must not notice.
  FaultGuard Guard;
  ASSERT_TRUE(Guard.arm("store-write:1.0:3"));
  StoreTempDir Tmp;
  persist::StensoStore::Options O;
  O.Dir = Tmp.sub("store");
  // The search makes only a handful of puts; flush each one and latch
  // after two failures so degradation happens mid-search.
  O.FlushThreshold = 1;
  O.MaxFlushFailures = 2;
  persist::StensoStore Store(O);
  observe::DecisionLog Decisions;
  ::testing::internal::CaptureStderr();
  SynthesisResult WithStore = runStoreProgram(&Store, &Decisions);
  std::string Err = ::testing::internal::GetCapturedStderr();
  expectStoreRunMatches(Baseline, WithStore, "write-failure");
  EXPECT_TRUE(Store.degraded());
  persist::StensoStore::Stats S = Store.stats();
  EXPECT_GE(S.FlushFailures, 2);
  EXPECT_GT(S.WriteRetriesUsed, 0);
  // Exactly one diagnostic, not one per failed flush.
  size_t First = Err.find("stenso-store:");
  ASSERT_NE(First, std::string::npos) << Err;
  EXPECT_EQ(Err.find("stenso-store:", First + 1), std::string::npos) << Err;
  // The degradation is on the decision-log record too.
  std::ostringstream Log;
  Decisions.writeJsonl(Log);
  EXPECT_NE(Log.str().find("store-degraded"), std::string::npos);
}

TEST(RobustnessTest, StoreVersionMismatchStartsColdAndIdentical) {
  SynthesisResult Baseline = runStoreProgram(nullptr);
  StoreTempDir Tmp;
  std::string Dir = Tmp.sub("store");
  std::filesystem::create_directories(Dir);
  {
    // A segment written by a "future" format version: magic matches,
    // version does not.  It must be skipped wholesale, never decoded.
    std::ofstream OS(Dir + "/seg-000001.log", std::ios::binary);
    const char Magic[4] = {'S', 'T', 'S', 'O'};
    OS.write(Magic, 4);
    uint32_t Version = persist::StensoStore::FormatVersion + 7;
    OS.write(reinterpret_cast<const char *>(&Version), 4);
    OS << "opaque future-format payload that must never be parsed";
  }
  persist::StensoStore::Options O;
  O.Dir = Dir;
  persist::StensoStore Store(O);
  EXPECT_EQ(Store.stats().VersionSkipped, 1);
  EXPECT_EQ(Store.size(), 0u);
  SynthesisResult WithStore = runStoreProgram(&Store);
  expectStoreRunMatches(Baseline, WithStore, "version-mismatch");
  EXPECT_EQ(WithStore.Stats.StoreHits, 0); // cold, as promised
  EXPECT_GT(WithStore.Stats.StorePuts, 0); // and it warms back up
  EXPECT_FALSE(Store.degraded());
}
