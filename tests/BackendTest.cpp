//===- BackendTest.cpp - Tests for framework execution backends -----------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "backend/ExecutionEngine.h"

#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::backend;

static TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

static InputBinding randomInputs(const InputDecls &Decls, RNG &Rng) {
  InputBinding Inputs;
  for (const auto &[Name, Type] : Decls) {
    Tensor T(Type.TShape, Type.Dtype);
    for (int64_t I = 0; I < T.getNumElements(); ++I)
      T.at(I) = Rng.positive();
    Inputs.emplace(Name, std::move(T));
  }
  return Inputs;
}

//===----------------------------------------------------------------------===//
// Rewrite rules
//===----------------------------------------------------------------------===//

static std::string rewriteToSource(const std::string &Source,
                                   const InputDecls &Decls,
                                   const RuleSet &Rules) {
  auto R = parseProgram(Source, Decls);
  EXPECT_TRUE(R) << R.Error;
  Program Dest;
  Dest.setRoot(applyRewriteRules(Dest, R.Prog->getRoot(), Rules));
  return printProgram(Dest);
}

TEST(RewriteRulesTest, PowerToMultiply) {
  EXPECT_EQ(rewriteToSource("np.power(A, 2)", {{"A", f64({4})}},
                            RuleSet::xlaLike()),
            "A * A");
}

TEST(RewriteRulesTest, DoubleTransposeEliminated) {
  EXPECT_EQ(rewriteToSource("np.transpose(np.transpose(A))",
                            {{"A", f64({3, 4})}}, RuleSet::xlaLike()),
            "A");
}

TEST(RewriteRulesTest, ExpLogOnlyInXla) {
  InputDecls Decls = {{"A", f64({4})}};
  EXPECT_EQ(rewriteToSource("np.exp(np.log(A))", Decls, RuleSet::xlaLike()),
            "A");
  // The Inductor-like set lacks this cancellation.
  EXPECT_EQ(rewriteToSource("np.exp(np.log(A))", Decls,
                            RuleSet::inductorLike()),
            "np.exp(np.log(A))");
}

TEST(RewriteRulesTest, IdentityElimination) {
  InputDecls Decls = {{"A", f64({4})}};
  EXPECT_EQ(rewriteToSource("A + 0", Decls, RuleSet::xlaLike()), "A");
  EXPECT_EQ(rewriteToSource("A * 1", Decls, RuleSet::xlaLike()), "A");
  EXPECT_EQ(rewriteToSource("A / 1", Decls, RuleSet::xlaLike()), "A");
}

TEST(RewriteRulesTest, DivideByConstantBecomesMultiply) {
  EXPECT_EQ(rewriteToSource("A / 4", {{"A", f64({4})}},
                            RuleSet::inductorLike()),
            "A * 1/4");
}

TEST(RewriteRulesTest, ConstantFolding) {
  EXPECT_EQ(rewriteToSource("A * (2 * 2 + 1)", {{"A", f64({4})}},
                            RuleSet::xlaLike()),
            "A * 5");
}

TEST(RewriteRulesTest, NoneLeavesProgramAlone) {
  std::string Source = "np.power(A, 2) + np.exp(np.log(A))";
  EXPECT_EQ(rewriteToSource(Source, {{"A", f64({4})}}, RuleSet::none()),
            Source);
}

TEST(RewriteRulesTest, RewritesPreserveSemantics) {
  InputDecls Decls = {{"A", f64({5})}, {"B", f64({5})}};
  std::string Source =
      "np.power(A, 2) / 4 + np.exp(np.log(A + B)) * 1 + (B + 0)";
  auto Original = parseProgram(Source, Decls);
  ASSERT_TRUE(Original);
  RNG Rng(3);
  InputBinding Inputs = randomInputs(Decls, Rng);
  Tensor Expected = interpretProgram(*Original.Prog, Inputs);
  for (const RuleSet &Rules :
       {RuleSet::none(), RuleSet::xlaLike(), RuleSet::inductorLike()}) {
    Program Dest;
    Dest.setRoot(applyRewriteRules(Dest, Original.Prog->getRoot(), Rules));
    EXPECT_TRUE(interpretProgram(Dest, Inputs).allClose(Expected, 1e-9));
  }
}

//===----------------------------------------------------------------------===//
// Execution engines
//===----------------------------------------------------------------------===//

namespace {

struct EngineCase {
  const char *Name;
  const char *Source;
  InputDecls Decls;
};

class EngineCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<FrameworkKind, EngineCase>> {
};

} // namespace

TEST_P(EngineCorrectnessTest, MatchesReferenceInterpreter) {
  auto [Kind, Case] = GetParam();
  auto Parsed = parseProgram(Case.Source, Case.Decls);
  ASSERT_TRUE(Parsed) << Parsed.Error;
  RNG Rng(11);
  InputBinding Inputs = randomInputs(Case.Decls, Rng);
  Tensor Expected = interpretProgram(*Parsed.Prog, Inputs);

  BackendConfig Config;
  Config.Kind = Kind;
  ExecutionEngine Engine(Config);
  Engine.compile(*Parsed.Prog);
  EXPECT_TRUE(Engine.execute(Inputs).allClose(Expected, 1e-9)) << Case.Name;
}

static std::vector<std::tuple<FrameworkKind, EngineCase>> engineMatrix() {
  std::vector<std::tuple<FrameworkKind, EngineCase>> Out;
  EngineCase Cases[] = {
      {"elementwise_chain", "(A + B) * A - B / (A + 1)",
       {{"A", f64({6})}, {"B", f64({6})}}},
      {"matmul_mix", "np.diag(np.dot(A, B)) + np.sum(A, axis=1)",
       {{"A", f64({4, 4})}, {"B", f64({4, 4})}}},
      {"comprehension", "np.stack([(x*a + (1 - a)*y) for a in A])",
       {{"A", f64({5})}, {"x", f64({})}, {"y", f64({})}}},
      {"masking", "np.where(A < B, np.sqrt(A), B)",
       {{"A", f64({3})}, {"B", f64({3})}}},
      {"reductions", "np.max(np.stack([A, B]), axis=0) + np.sum(A) * B",
       {{"A", f64({4})}, {"B", f64({4})}}}};
  for (FrameworkKind Kind : {FrameworkKind::NumPyEager, FrameworkKind::XlaLike,
                             FrameworkKind::InductorLike})
    for (const EngineCase &Case : Cases)
      Out.emplace_back(Kind, Case);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, EngineCorrectnessTest, ::testing::ValuesIn(engineMatrix()),
    [](const ::testing::TestParamInfo<
        std::tuple<FrameworkKind, EngineCase>> &I) {
      std::string Name = toString(std::get<0>(I.param)) + "_" +
                         std::get<1>(I.param).Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(ExecutionEngineTest, CompiledFrameworksApplyTheirRules) {
  InputDecls Decls = {{"A", f64({4})}};
  auto Parsed = parseProgram("np.exp(np.log(A))", Decls);
  ASSERT_TRUE(Parsed);
  BackendConfig Jax;
  Jax.Kind = FrameworkKind::XlaLike;
  ExecutionEngine Engine(Jax);
  Engine.compile(*Parsed.Prog);
  EXPECT_EQ(printProgram(Engine.getCompiledProgram()), "A");
}

TEST(ExecutionEngineTest, EagerLoopIsSlowerThanVectorized) {
  // The eager backend's per-trip charge must make the Python-style loop
  // measurably slower than the broadcast form — the Vectorization story.
  InputDecls Decls = {{"A", f64({256})}};
  auto Loop = parseProgram("np.stack([x * 2 for x in A], axis=0)", Decls);
  auto Vect = parseProgram("A * 2", Decls);
  ASSERT_TRUE(Loop && Vect);
  RNG Rng(4);
  InputBinding Inputs = randomInputs(Decls, Rng);

  BackendConfig Eager; // NumPy
  ExecutionEngine LoopEngine(Eager), VectEngine(Eager);
  LoopEngine.compile(*Loop.Prog);
  VectEngine.compile(*Vect.Prog);
  double LoopTime = LoopEngine.measureSeconds(Inputs, 3);
  double VectTime = VectEngine.measureSeconds(Inputs, 3);
  EXPECT_GT(LoopTime, 4.0 * VectTime);
}

TEST(ExecutionEngineTest, CompiledBackendCheaperThanEagerOnOpChains) {
  // Many small ops: eager pays a dispatch per op; XLA-like fuses the
  // chain into one kernel.
  InputDecls Decls = {{"A", f64({64})}, {"B", f64({64})}};
  auto Parsed = parseProgram(
      "((A + B) * A - B) / (A + 1) + (B - A) * (A + 2)", Decls);
  ASSERT_TRUE(Parsed);
  RNG Rng(5);
  InputBinding Inputs = randomInputs(Decls, Rng);

  BackendConfig Eager;
  BackendConfig Jax;
  Jax.Kind = FrameworkKind::XlaLike;
  ExecutionEngine EagerEngine(Eager), JaxEngine(Jax);
  EagerEngine.compile(*Parsed.Prog);
  JaxEngine.compile(*Parsed.Prog);
  EXPECT_GT(EagerEngine.measureSeconds(Inputs, 3),
            JaxEngine.measureSeconds(Inputs, 3));
}

TEST(ExecutionEngineTest, PlatformProfilesScaleOverheads) {
  BackendConfig Amd;
  BackendConfig Intel;
  Intel.Platform = PlatformProfile::i7_8700k();
  EXPECT_GT(Intel.perOpSeconds(), Amd.perOpSeconds());
  EXPECT_EQ(PlatformProfile::all().size(), 3u);
}

TEST(ExecutionEngineTest, ConfigNames) {
  BackendConfig C;
  C.Kind = FrameworkKind::InductorLike;
  C.Platform = PlatformProfile::m3pro();
  EXPECT_EQ(C.name(), "PyTorch-Inductor/Apple-M3-Pro");
}

TEST(ExecutionEngineTest, FusedReductionCrossesChunkBoundaries) {
  // The chunk VM processes 512-element blocks; reductions must accumulate
  // correctly across chunk and row boundaries for every axis.
  InputDecls Decls = {{"A", f64({7, 300})}, {"x", f64({300})}};
  for (const char *Source :
       {"np.sum(A * x, axis=1)", "np.sum(A * x, axis=0)",
        "np.sum(A * x)", "np.max(A * x, axis=1)", "np.max(A * x, axis=0)"}) {
    auto Parsed = parseProgram(Source, Decls);
    ASSERT_TRUE(Parsed) << Parsed.Error;
    RNG Rng(21);
    InputBinding Inputs = randomInputs(Decls, Rng);
    Tensor Expected = interpretProgram(*Parsed.Prog, Inputs);
    BackendConfig Jax;
    Jax.Kind = FrameworkKind::XlaLike;
    ExecutionEngine Engine(Jax);
    Engine.compile(*Parsed.Prog);
    EXPECT_TRUE(Engine.execute(Inputs).allClose(Expected, 1e-9)) << Source;
  }
}

TEST(ExecutionEngineTest, AblationOverridesChangeBehaviour) {
  InputDecls Decls = {{"A", f64({8})}};
  auto Parsed = parseProgram("np.exp(np.log(A))", Decls);
  ASSERT_TRUE(Parsed);
  BackendConfig NoRules;
  NoRules.Kind = FrameworkKind::XlaLike;
  NoRules.OverrideRules = false;
  ExecutionEngine Engine(NoRules);
  Engine.compile(*Parsed.Prog);
  // With rules disabled, the exp(log(...)) survives compilation.
  EXPECT_EQ(printProgram(Engine.getCompiledProgram()),
            "np.exp(np.log(A))");

  BackendConfig NoFusion;
  NoFusion.Kind = FrameworkKind::XlaLike;
  NoFusion.OverrideFusion = false;
  EXPECT_FALSE(NoFusion.fusesElementwise());
  RNG Rng(2);
  InputBinding Inputs = randomInputs(Decls, Rng);
  ExecutionEngine Unfused(NoFusion);
  Unfused.compile(*Parsed.Prog);
  EXPECT_TRUE(Unfused.execute(Inputs).allClose(
      interpretProgram(*Parsed.Prog, Inputs), 1e-9));
}
