//===- FuzzTest.cpp - Tests for the coverage-guided fuzzing stack ----------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer fuzzes the synthesizer, so its own guarantees need pinning:
/// seed-determinism of generation and mutation, well-typedness of every
/// mutant, spec-hash dedup, shrinker convergence, coverage-key
/// extraction — plus the checked-in corpus contract: every entry under
/// tests/fuzz_corpus/ replays cleanly through the differential oracle
/// at jobs=1 and jobs=4 and ingests into the evaluation suite.
///
/// Seed discipline (DESIGN.md §12): randomized tests read STENSO_SEED
/// from the environment and announce the seed via SCOPED_TRACE, so any
/// CI failure reproduces with `STENSO_SEED=<seed> ./FuzzTest`.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Shrinker.h"

#include "dsl/Printer.h"
#include "evalsuite/Classifier.h"
#include "evalsuite/CorpusIngest.h"
#include "support/RNG.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <map>

using namespace stenso;
using namespace stenso::fuzz;

#ifndef STENSO_FUZZ_CORPUS_DIR
#define STENSO_FUZZ_CORPUS_DIR "tests/fuzz_corpus"
#endif

namespace {

/// The announced-seed idiom every randomized test here uses.
uint64_t testSeed(uint64_t Default) { return seedFromEnv(Default); }

/// Oracle bounds for tests: no wall clock (deterministic on any host),
/// solver/symbolic caps doing the limiting.
OracleConfig testOracle(int Jobs, bool CheckJobs) {
  OracleConfig Config;
  Config.TimeoutSeconds = 0;
  Config.Jobs = Jobs;
  Config.CheckJobs = CheckJobs;
  return Config;
}

std::vector<FuzzCase> loadCheckedInCorpus() {
  Corpus Store(STENSO_FUZZ_CORPUS_DIR);
  std::string Error;
  EXPECT_TRUE(Store.load(Error)) << Error;
  return Store.cases();
}

} // namespace

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGeneratorTest, SameSeedSamePrograms) {
  uint64_t Seed = testSeed(0xfeed5eed);
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(Seed));
  ProgramGenerator A(Seed), B(Seed);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(toProgramText(A.generate()), toProgramText(B.generate())) << I;
}

TEST(FuzzGeneratorTest, DifferentSeedsDiverge) {
  ProgramGenerator A(1), B(2);
  bool Diverged = false;
  for (int I = 0; I < 10 && !Diverged; ++I)
    Diverged = toProgramText(A.generate()) != toProgramText(B.generate());
  EXPECT_TRUE(Diverged);
}

TEST(FuzzGeneratorTest, GeneratedProgramsParseAndRoundTrip) {
  uint64_t Seed = testSeed(11);
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(Seed));
  ProgramGenerator Gen(Seed);
  for (int I = 0; I < 50; ++I) {
    FuzzCase Case = Gen.generate();
    dsl::ParseResult Parsed = parseCase(Case);
    ASSERT_TRUE(Parsed) << Case.Source << "\n" << Parsed.Error;
    // The printer's text is the canonical form; parsing and re-printing
    // must be a fixed point or spec hashing would be unstable.
    EXPECT_EQ(dsl::printProgram(*Parsed.Prog), Case.Source);
  }
}

TEST(FuzzGeneratorTest, GeneratorReachesShapesTheSuiteNeverUses) {
  uint64_t Seed = testSeed(29);
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(Seed));
  ProgramGenerator Gen(Seed);
  bool SawRagged = false, SawLarge = false, SawRank3 = false;
  for (int I = 0; I < 80; ++I) {
    FuzzCase Case = Gen.generate();
    for (const auto &[Name, Type] : Case.Inputs) {
      const Shape &S = Type.TShape;
      if (S.getRank() == 2 && S.getDim(0) != S.getDim(1))
        SawRagged = true;
      if (S.getRank() == 3)
        SawRank3 = true;
      for (int64_t D = 0; D < S.getRank(); ++D)
        SawLarge |= S.getDim(D) > 5;
    }
  }
  EXPECT_TRUE(SawRagged);
  EXPECT_TRUE(SawLarge);
  EXPECT_TRUE(SawRank3);
}

//===----------------------------------------------------------------------===//
// Mutation
//===----------------------------------------------------------------------===//

TEST(FuzzMutationTest, EveryMutantIsWellTyped) {
  uint64_t Seed = testSeed(5);
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(Seed));
  ProgramGenerator Gen(Seed);
  int Produced = 0;
  for (int I = 0; I < 25; ++I) {
    FuzzCase Parent = Gen.generate();
    for (int K = 0; K < NumMutationKinds; ++K) {
      std::optional<FuzzCase> Child =
          Gen.mutate(Parent, static_cast<MutationKind>(K));
      if (!Child)
        continue; // the drawn site could not be rewritten; that's fine
      ++Produced;
      dsl::ParseResult Parsed = parseCase(*Child);
      EXPECT_TRUE(Parsed) << toString(static_cast<MutationKind>(K)) << " of\n"
                          << Parent.Source << "\nproduced unparseable\n"
                          << Child->Source << "\n"
                          << Parsed.Error;
    }
  }
  // The mutations must actually fire, not vacuously pass.
  EXPECT_GT(Produced, 25);
}

TEST(FuzzMutationTest, ShapePerturbRemapsConsistently) {
  // A ShapePerturb mutant must still parse (checked above) *and* keep
  // using each input; a square matrix becoming ragged is the
  // interesting outcome the suite shapes never exercise.
  uint64_t Seed = testSeed(17);
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(Seed));
  ProgramGenerator Gen(Seed);
  int Perturbed = 0;
  for (int I = 0; I < 40 && Perturbed < 5; ++I) {
    FuzzCase Parent = Gen.generate();
    std::optional<FuzzCase> Child =
        Gen.mutate(Parent, MutationKind::ShapePerturb);
    if (!Child)
      continue;
    ++Perturbed;
    EXPECT_NE(toProgramText(*Child), toProgramText(Parent));
  }
  EXPECT_GE(Perturbed, 5);
}

TEST(FuzzMutationTest, SpecHashDedupsStructurally) {
  ProgramGenerator Gen(3);
  FuzzCase A = Gen.generate();
  FuzzCase B = A;
  EXPECT_EQ(specHash(A), specHash(B));
  EXPECT_EQ(specHashHex(A).size(), 16u);
  // A textual change of any kind moves the hash.
  B.Source += " ";
  EXPECT_NE(specHash(A), specHash(B));
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

TEST(FuzzShrinkerTest, MinimizesToThePredicateCore) {
  FuzzCase Case;
  Case.Inputs = {{"A", dsl::TensorType{DType::Float64, Shape({4})}},
                 {"B", dsl::TensorType{DType::Float64, Shape({4})}}};
  Case.Source = "np.sqrt(np.sum(A * A)) + (B - B)";
  ASSERT_TRUE(parseCase(Case));

  auto StillHasSum = [](const FuzzCase &C) {
    return C.Source.find("np.sum") != std::string::npos;
  };
  ShrinkResult R = shrinkCase(Case, StillHasSum);
  EXPECT_TRUE(StillHasSum(R.Minimized));
  EXPECT_GT(R.Steps, 0);
  // The (B - B) half, the sqrt wrapper, and one multiplicand are not
  // needed to keep the predicate true, so a correct shrinker removes
  // them all.
  EXPECT_EQ(R.Minimized.Source, "np.sum(A)");
  // Deterministic: shrinking again from the original reproduces it.
  ShrinkResult R2 = shrinkCase(Case, StillHasSum);
  EXPECT_EQ(R2.Minimized.Source, R.Minimized.Source);
}

TEST(FuzzShrinkerTest, AlreadyMinimalCaseIsUntouched) {
  FuzzCase Case;
  Case.Inputs = {{"A", dsl::TensorType{DType::Float64, Shape({4})}}};
  Case.Source = "np.sum(A)";
  ShrinkResult R = shrinkCase(Case, [](const FuzzCase &C) {
    return C.Source.find("np.sum") != std::string::npos;
  });
  EXPECT_EQ(R.Steps, 0);
  EXPECT_EQ(R.Minimized.Source, Case.Source);
}

//===----------------------------------------------------------------------===//
// Coverage
//===----------------------------------------------------------------------===//

TEST(FuzzCoverageTest, MapCountsNoveltyOnce) {
  CoverageMap Map;
  EXPECT_EQ(Map.addAll({"a", "b", "a"}), 2);
  EXPECT_EQ(Map.addAll({"a", "c"}), 1);
  EXPECT_EQ(Map.size(), 3u);
  EXPECT_EQ(Map.novel({"b", "d", "d"}), std::vector<std::string>{"d"});
  EXPECT_EQ(Map.counts().at("a"), 3);
}

TEST(FuzzCoverageTest, KeysDescribeShapesAndOutcome) {
  FuzzCase Case;
  Case.Inputs = {{"M", dsl::TensorType{DType::Float64, Shape({3, 7})}},
                 {"s", dsl::TensorType{DType::Float64, Shape()}}};
  Case.Source = "np.sum(M, axis=0) * s";
  dsl::ParseResult Parsed = parseCase(Case);
  ASSERT_TRUE(Parsed);
  synth::SynthesisResult Result; // not improved, completed
  std::vector<std::string> Keys =
      collectCoverageKeys(*Parsed.Prog, Result, {});
  auto Has = [&Keys](const std::string &K) {
    return std::find(Keys.begin(), Keys.end(), K) != Keys.end();
  };
  EXPECT_TRUE(Has("shape:ragged"));
  EXPECT_TRUE(Has("shape:rank2"));
  EXPECT_TRUE(Has("shape:scalar-input"));
  EXPECT_TRUE(Has("shape:ext-large"));
  EXPECT_TRUE(Has("abort:None"));
  EXPECT_TRUE(Has("improved:no"));
  EXPECT_TRUE(Has("op:np.sum"));
  EXPECT_TRUE(Has("op:np.multiply"));
}

//===----------------------------------------------------------------------===//
// End-to-end smoke: a short fuzz run must be clean and reproducible
//===----------------------------------------------------------------------===//

TEST(FuzzLoopTest, ShortRunIsCleanAndDeterministic) {
  uint64_t Seed = testSeed(23);
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(Seed));
  FuzzerConfig Config;
  Config.Seed = Seed;
  Config.Budget = 6;
  Config.Oracle = testOracle(/*Jobs=*/2, /*CheckJobs=*/true);
  FuzzRunReport A = Fuzzer(Config).run();
  EXPECT_EQ(A.Stats.Executed, Config.Budget);
  for (const FuzzFinding &F : A.Findings)
    ADD_FAILURE() << F.Check << ": " << F.Detail << "\n"
                  << toProgramText(F.Minimized);
  EXPECT_GE(A.Coverage.size(), 5u);

  FuzzRunReport B = Fuzzer(Config).run();
  EXPECT_EQ(A.Coverage.counts(), B.Coverage.counts());
  EXPECT_EQ(A.Stats.CoverageCurve, B.Stats.CoverageCurve);
}

TEST(FuzzLoopTest, BaselineCoverageSuppressesNoveltyCredit) {
  uint64_t Seed = testSeed(23);
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(Seed));
  FuzzerConfig Config;
  Config.Seed = Seed;
  Config.Budget = 6;
  Config.Oracle = testOracle(/*Jobs=*/1, /*CheckJobs=*/false);

  // Credit is only earned beyond the baseline, so folding every key a
  // run observes back into the baseline must reach a fixpoint where no
  // case earns credit, the population never forms, and every draw is
  // fresh.  (Iteration is needed because the baseline changes which
  // branches the loop takes, which shifts the RNG stream.)
  CoverageMap Baseline;
  bool Converged = false;
  for (int Round = 0; Round < 10 && !Converged; ++Round) {
    Config.BaselineCoverage.clear();
    for (const auto &[Key, Count] : Baseline.counts())
      Config.BaselineCoverage.push_back(Key);
    FuzzRunReport Run = Fuzzer(Config).run();
    EXPECT_GT(Run.Coverage.size(), 0u);
    int Beyond = 0;
    for (const auto &[Key, Count] : Run.Coverage.counts())
      if (!Baseline.contains(Key))
        Beyond += Baseline.addAll({Key});
    if (Beyond == 0) {
      // Nothing earned credit: the run must have been mutation-free.
      EXPECT_EQ(Run.Stats.Mutants, 0);
      EXPECT_EQ(Run.Stats.FreshGenerated, Run.Stats.Executed);
      Converged = true;
    }
  }
  EXPECT_TRUE(Converged) << "baseline never absorbed the run's coverage";
}

//===----------------------------------------------------------------------===//
// Checked-in corpus: replay and suite ingestion
//===----------------------------------------------------------------------===//

TEST(FuzzCorpusTest, CorpusIsNonEmptyAndNamedByHash) {
  std::vector<FuzzCase> Cases = loadCheckedInCorpus();
  ASSERT_FALSE(Cases.empty())
      << "tests/fuzz_corpus must ship grown entries";
  for (const FuzzCase &Case : Cases) {
    // The filename embeds the structural hash; recomputing it from the
    // loaded text must agree (the file round-trips byte-exactly).
    EXPECT_EQ(Case.Name.substr(Case.Name.size() - 16), specHashHex(Case))
        << Case.Name;
  }
}

TEST(FuzzCorpusTest, ReplaysCleanSequential) {
  std::vector<FuzzCase> Cases = loadCheckedInCorpus();
  FuzzerConfig Config;
  Config.Oracle = testOracle(/*Jobs=*/1, /*CheckJobs=*/false);
  FuzzRunReport Report = Fuzzer(Config).replay(Cases);
  for (const FuzzFinding &F : Report.Findings)
    ADD_FAILURE() << F.Minimized.Name << " " << F.Check << ": " << F.Detail;
}

TEST(FuzzCorpusTest, ReplaysCleanJobs4) {
  std::vector<FuzzCase> Cases = loadCheckedInCorpus();
  FuzzerConfig Config;
  Config.Oracle = testOracle(/*Jobs=*/4, /*CheckJobs=*/true);
  FuzzRunReport Report = Fuzzer(Config).replay(Cases);
  for (const FuzzFinding &F : Report.Findings)
    ADD_FAILURE() << F.Minimized.Name << " " << F.Check << ": " << F.Detail;
}

TEST(FuzzCorpusTest, IngestsIntoTheEvaluationSuite) {
  std::vector<evalsuite::BenchmarkDef> Defs;
  std::string Error;
  ASSERT_TRUE(evalsuite::loadCorpusSuite(STENSO_FUZZ_CORPUS_DIR, Defs, Error))
      << Error;
  size_t Files = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(STENSO_FUZZ_CORPUS_DIR))
    Files += Entry.path().extension() == ".stenso" ? 1 : 0;
  EXPECT_EQ(Defs.size(), Files);
  for (const evalsuite::BenchmarkDef &Def : Defs) {
    EXPECT_EQ(Def.Domain, "Corpus");
    EXPECT_TRUE(Def.Synthetic);
    // declsFor/sourceFor must reproduce a parseable program at both the
    // reduced and full scales.
    EXPECT_TRUE(dsl::parseProgram(Def.sourceFor(false), Def.declsFor(false)))
        << Def.Name;
    EXPECT_TRUE(dsl::parseProgram(Def.sourceFor(true), Def.declsFor(true)))
        << Def.Name;
  }
}

TEST(FuzzCorpusTest, ClassifierHistogramIsStable) {
  // Every grown-corpus program gets exactly one transformation class
  // (the classifier is total), and the histogram is identical across
  // passes — the corpus pins the classifier against drift.
  std::vector<FuzzCase> Cases = loadCheckedInCorpus();
  auto Histogram = [&Cases]() {
    std::map<std::string, int> H;
    for (const FuzzCase &Case : Cases) {
      dsl::ParseResult Parsed = parseCase(Case);
      EXPECT_TRUE(Parsed) << Case.Name;
      if (!Parsed)
        continue;
      // Self-classification exercises the total function; shrunken
      // variants exercise the (original, changed) paths.
      evalsuite::TransformClass C = evalsuite::classifyTransformation(
          Parsed.Prog->getRoot(), Parsed.Prog->getRoot());
      H[toString(C)] += 1;
      if (std::optional<FuzzCase> Smaller = shrinkAt(Case, 0, 0)) {
        dsl::ParseResult SmallParsed = parseCase(*Smaller);
        if (SmallParsed)
          H[toString(evalsuite::classifyTransformation(
              Parsed.Prog->getRoot(), SmallParsed.Prog->getRoot()))] += 1;
      }
    }
    return H;
  };
  std::map<std::string, int> First = Histogram();
  EXPECT_FALSE(First.empty());
  int Total = 0;
  for (const auto &[Name, Count] : First)
    Total += Count;
  EXPECT_GE(Total, static_cast<int>(Cases.size()));
  EXPECT_EQ(Histogram(), First);
}
