//===- PropertyTest.cpp - Randomized end-to-end properties ----------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based testing across the whole stack:
///
///   * random well-typed DSL programs evaluate identically under the
///     reference interpreter, all three backend presets, and the
///     symbolic executor;
///   * whatever the synthesizer returns for a random program is
///     equivalent to it and never costlier;
///   * printing and re-parsing a random program preserves semantics.
///
//===----------------------------------------------------------------------===//

#include "backend/ExecutionEngine.h"
#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "support/RNG.h"
#include "symbolic/Evaluator.h"
#include "symexec/SymbolicExecutor.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;

namespace {

/// Seed discipline (DESIGN.md §12): STENSO_SEED in the environment
/// offsets every derived shard seed, and each randomized test announces
/// the value to set for an exact reproduction.
uint64_t baseSeed() { return seedFromEnv(0); }

/// Generates random well-typed DSL programs over a fixed input signature.
class ProgramFuzzer {
public:
  ProgramFuzzer(uint64_t Seed) : Rng(Seed) {}

  /// Builds a random program with inputs A,B (vectors), M (matrix), and
  /// s (scalar).
  std::unique_ptr<Program> generate(int MaxOps) {
    auto P = std::make_unique<Program>();
    TensorType Vec{DType::Float64, Shape({5})};
    TensorType Mat{DType::Float64, Shape({4, 5})};
    TensorType Scal{DType::Float64, Shape()};
    std::vector<const Node *> Pool = {
        P->input("A", Vec), P->input("B", Vec), P->input("M", Mat),
        P->input("s", Scal), P->constant(Rational(2)),
        P->constant(Rational(1, 2))};

    for (int Step = 0; Step < MaxOps; ++Step) {
      const Node *Made = randomOp(*P, Pool);
      if (Made)
        Pool.push_back(Made);
    }
    // Root: the last non-leaf node if any, else a trivial op.
    for (auto It = Pool.rbegin(); It != Pool.rend(); ++It)
      if (!(*It)->isInput() && !(*It)->isConstant()) {
        P->setRoot(*It);
        return P;
      }
    P->setRoot(P->add(Pool[0], Pool[1]));
    return P;
  }

  RNG &rng() { return Rng; }

private:
  const Node *pick(const std::vector<const Node *> &Pool) {
    return Pool[static_cast<size_t>(
        Rng.uniformInt(0, static_cast<int64_t>(Pool.size()) - 1))];
  }

  const Node *randomOp(Program &P, const std::vector<const Node *> &Pool) {
    switch (Rng.uniformInt(0, 9)) {
    case 0:
      return P.tryMake(OpKind::Add, {pick(Pool), pick(Pool)});
    case 1:
      return P.tryMake(OpKind::Subtract, {pick(Pool), pick(Pool)});
    case 2:
      return P.tryMake(OpKind::Multiply, {pick(Pool), pick(Pool)});
    case 3:
      return P.tryMake(OpKind::Divide, {pick(Pool), pick(Pool)});
    case 4:
      return P.tryMake(OpKind::Sqrt, {pick(Pool)});
    case 5:
      return P.tryMake(OpKind::Maximum, {pick(Pool), pick(Pool)});
    case 6:
      return P.tryMake(OpKind::Dot, {pick(Pool), pick(Pool)});
    case 7: {
      const Node *Operand = pick(Pool);
      if (Operand->getType().TShape.getRank() == 0)
        return nullptr;
      NodeAttrs Attrs;
      Attrs.Axis = Rng.uniformInt(0, Operand->getType().TShape.getRank() - 1);
      return P.tryMake(OpKind::Sum, {Operand}, Attrs);
    }
    case 8:
      return P.tryMake(OpKind::Transpose, {pick(Pool)});
    default:
      return P.tryMake(OpKind::Power,
                       {pick(Pool), P.constant(Rational(2))});
    }
  }

  RNG Rng;
};

InputBinding randomInputsFor(const Program &P, RNG &Rng) {
  InputBinding Inputs;
  for (const Node *In : P.getInputs()) {
    Tensor T(In->getType().TShape);
    for (int64_t I = 0; I < T.getNumElements(); ++I)
      T.at(I) = Rng.positive();
    Inputs.emplace(In->getName(), std::move(T));
  }
  return Inputs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Backends agree with the reference interpreter on random programs
//===----------------------------------------------------------------------===//

class FuzzSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeedTest, BackendsMatchReferenceInterpreter) {
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  ProgramFuzzer Fuzzer(baseSeed() + static_cast<uint64_t>(GetParam()) * 7919 + 13);
  std::unique_ptr<Program> P = Fuzzer.generate(8);
  InputBinding Inputs = randomInputsFor(*P, Fuzzer.rng());
  Tensor Expected = interpretProgram(*P, Inputs);
  if (!Expected.allClose(Expected))
    GTEST_SKIP() << "program produced NaN (division chains)";

  for (backend::FrameworkKind Kind :
       {backend::FrameworkKind::NumPyEager, backend::FrameworkKind::XlaLike,
        backend::FrameworkKind::InductorLike}) {
    backend::BackendConfig Config;
    Config.Kind = Kind;
    backend::ExecutionEngine Engine(Config);
    Engine.compile(*P);
    EXPECT_TRUE(Engine.execute(Inputs).allClose(Expected, 1e-7, 1e-9))
        << backend::toString(Kind) << " on " << printProgram(*P);
  }
}

TEST_P(FuzzSeedTest, SymbolicExecutionMatchesConcrete) {
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  ProgramFuzzer Fuzzer(baseSeed() + static_cast<uint64_t>(GetParam()) * 104729 + 7);
  std::unique_ptr<Program> P = Fuzzer.generate(6);
  InputBinding Inputs = randomInputsFor(*P, Fuzzer.rng());
  Tensor Concrete = interpretProgram(*P, Inputs);
  if (!Concrete.allClose(Concrete))
    GTEST_SKIP() << "program produced NaN";

  sym::ExprContext Ctx;
  symexec::SymTensor Spec = symexec::computeSpec(*P, Ctx);
  ASSERT_EQ(Spec.getShape(), Concrete.getShape());

  sym::Environment Env;
  for (const sym::Expr *E : Spec.getElements())
    for (const sym::SymbolExpr *S : sym::collectSymbols(E)) {
      const Tensor &T = Inputs.at(S->getTensorName());
      int64_t Flat = S->getIndices().empty()
                         ? 0
                         : T.getShape().linearize(S->getIndices());
      Env.emplace(S, T.at(Flat));
    }
  for (int64_t I = 0; I < Concrete.getNumElements(); ++I) {
    double Symbolic = sym::evaluate(Spec.at(I), Env);
    double Scale = std::max(1.0, std::fabs(Symbolic));
    EXPECT_NEAR(Concrete.at(I), Symbolic, 1e-7 * Scale)
        << printProgram(*P) << " element " << I;
  }
}

TEST_P(FuzzSeedTest, PrintParseRoundTripPreservesSemantics) {
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  ProgramFuzzer Fuzzer(baseSeed() + static_cast<uint64_t>(GetParam()) * 31337 + 3);
  std::unique_ptr<Program> P = Fuzzer.generate(8);
  std::string Printed = printProgram(*P);

  InputDecls Decls;
  for (const Node *In : P->getInputs())
    Decls.emplace_back(In->getName(), In->getType());
  ParseResult Reparsed = parseProgram(Printed, Decls);
  ASSERT_TRUE(Reparsed) << Printed << ": " << Reparsed.Error;

  InputBinding Inputs = randomInputsFor(*P, Fuzzer.rng());
  Tensor A = interpretProgram(*P, Inputs);
  Tensor B = interpretProgram(*Reparsed.Prog, Inputs);
  if (!A.allClose(A))
    GTEST_SKIP() << "program produced NaN";
  EXPECT_TRUE(A.allClose(B, 1e-9)) << Printed;
}

TEST_P(FuzzSeedTest, SynthesisResultIsEquivalentAndNoCostlier) {
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  ProgramFuzzer Fuzzer(baseSeed() + static_cast<uint64_t>(GetParam()) * 15485863 + 1);
  std::unique_ptr<Program> P = Fuzzer.generate(5);
  InputBinding Probe = randomInputsFor(*P, Fuzzer.rng());
  Tensor Expected = interpretProgram(*P, Probe);
  if (!Expected.allClose(Expected))
    GTEST_SKIP() << "program produced NaN";

  synth::SynthesisConfig Config; // analytic model: deterministic and fast
  Config.TimeoutSeconds = 20;
  synth::SynthesisResult R = synth::Synthesizer(Config).run(*P);
  EXPECT_LE(R.OptimizedCost, R.OriginalCost) << printProgram(*P);
  if (!R.Improved)
    return;
  ASSERT_TRUE(R.Optimized);
  for (int Trial = 0; Trial < 3; ++Trial) {
    InputBinding Inputs = randomInputsFor(*P, Fuzzer.rng());
    Tensor Want = interpretProgram(*P, Inputs);
    Tensor Got = interpretProgram(*R.Optimized, Inputs);
    EXPECT_TRUE(Want.allClose(Got, 1e-6, 1e-8))
        << printProgram(*P) << "  =>  " << R.OptimizedSource;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Range(0, 12));

//===----------------------------------------------------------------------===//
// The parser is total: malformed sources yield diagnostics, never aborts
//===----------------------------------------------------------------------===//

TEST(ParserRobustnessTest, MalformedSourcesYieldDiagnosticsNotAborts) {
  InputDecls Decls = {{"A", {DType::Float64, Shape({4, 5})}},
                      {"B", {DType::Float64, Shape({5})}}};
  // A corpus of the ways user input goes wrong: truncation, stray
  // tokens, unknown callees, arity and shape violations, garbage bytes.
  const char *Corpus[] = {
      "",
      "   \t  ",
      "(",
      ")",
      "np.dot(",
      "np.dot(A,",
      "np.dot(A, B))",
      "np.dot(A B)",
      "np.dot(A,,B)",
      "np.frobnicate(A)",
      "np.dot()",
      "np.dot(A)",
      "np.dot(A, B, A)",
      "np.dot(B, A)",      // shape mismatch: [5] x [4,5]
      "A + ",
      "+ A",
      "A + C",             // C is undeclared
      "A ** B ** ",
      "np.diag(np.diag(np.dot(A)))",
      "1 / / 2",
      "np.sum(A, axis=7)", // axis out of range
      "\"string\"",
      "A @ # B",
      "np.dot(A, B",
      "((((((((((A))))))))))" // valid-adjacent: must not crash either way
  };
  for (const char *Source : Corpus) {
    ParseResult R = parseProgram(Source, Decls);
    // Reaching this point at all is the property under test (no abort);
    // additionally a failed parse must carry a diagnostic.
    if (!R)
      EXPECT_FALSE(R.Error.empty()) << "silent failure on: " << Source;
  }
}

TEST(ParserRobustnessTest, MutatedValidProgramsNeverAbortTheParser) {
  // Take printed valid programs and corrupt single characters: every
  // mutant must either reparse or fail with a diagnostic, never abort.
  const char Junk[] = {'(', ')', ',', '*', 'x', '@', '\0', '\xff'};
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  for (int Seed = 0; Seed < 4; ++Seed) {
    ProgramFuzzer Fuzzer(baseSeed() + static_cast<uint64_t>(Seed) * 2654435761u + 17);
    std::unique_ptr<Program> P = Fuzzer.generate(5);
    std::string Printed = printProgram(*P);
    InputDecls Decls;
    for (const Node *In : P->getInputs())
      Decls.emplace_back(In->getName(), In->getType());
    for (size_t Pos = 0; Pos < Printed.size(); ++Pos)
      for (char C : Junk) {
        std::string Mutant = Printed;
        Mutant[Pos] = C;
        ParseResult R = parseProgram(Mutant, Decls);
        if (!R)
          EXPECT_FALSE(R.Error.empty()) << "silent failure on: " << Mutant;
      }
  }
}
