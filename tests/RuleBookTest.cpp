//===- RuleBookTest.cpp - Tests for the mined-rule rewriting pass ----------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "evalsuite/RuleBook.h"

#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "support/RNG.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::evalsuite;

namespace {

TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

/// Parses both sides at the given decls and adds them as a rule.
bool addRuleFrom(RuleBook &Book, const std::string &Lhs,
                 const std::string &Rhs, const InputDecls &Decls) {
  auto A = parseProgram(Lhs, Decls);
  auto B = parseProgram(Rhs, Decls);
  EXPECT_TRUE(A && B) << A.Error << B.Error;
  return Book.addRule(A.Prog->getRoot(), B.Prog->getRoot());
}

std::string rewriteWith(const RuleBook &Book, const std::string &Source,
                        const InputDecls &Decls, int *Applied = nullptr) {
  auto P = parseProgram(Source, Decls);
  EXPECT_TRUE(P) << P.Error;
  Program Dest;
  const Node *Root = Book.apply(Dest, P.Prog->getRoot(), Applied);
  return printNode(Root);
}

} // namespace

TEST(RuleBookTest, AppliesSimpleRule) {
  RuleBook Book;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(Book, "np.power(X, 2)", "X * X", RuleDecls));
  EXPECT_EQ(Book.size(), 1u);

  // Applies at a *different* shape than the rule was mined at.
  InputDecls Decls = {{"A", f64({3, 7})}};
  EXPECT_EQ(rewriteWith(Book, "np.power(A, 2)", Decls), "A * A");
}

TEST(RuleBookTest, VariablesBindSubtrees) {
  RuleBook Book;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(Book, "(X) / np.sqrt(X)", "np.sqrt(X)",
                          RuleDecls));
  InputDecls Decls = {{"A", f64({5})}, {"B", f64({5})}};
  // X binds the subtree (A + B); both occurrences must unify.
  EXPECT_EQ(rewriteWith(Book, "(A + B) / np.sqrt(A + B)", Decls),
            "np.sqrt(A + B)");
  // Mismatched occurrences must NOT fire.
  int Applied = -1;
  rewriteWith(Book, "(A + B) / np.sqrt(A - B)", Decls, &Applied);
  EXPECT_EQ(Applied, 0);
}

TEST(RuleBookTest, AppliesInsideLargerPrograms) {
  RuleBook Book;
  InputDecls RuleDecls = {{"X", f64({3, 3})}, {"Y", f64({3, 3})}};
  ASSERT_TRUE(addRuleFrom(Book, "np.diag(np.dot(X, Y))",
                          "np.sum(X * Y.T, axis=1)", RuleDecls));
  InputDecls Decls = {{"P", f64({6, 6})}, {"Q", f64({6, 6})},
                      {"r", f64({6})}};
  int Applied = 0;
  std::string Out = rewriteWith(
      Book, "np.diag(np.dot(P, Q)) * r + r", Decls, &Applied);
  EXPECT_EQ(Applied, 1);
  EXPECT_EQ(Out, "np.sum(P * Q.T, axis=1) * r + r");
}

TEST(RuleBookTest, FixpointChainsRules) {
  RuleBook Book;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(Book, "np.exp(np.log(X))", "X", RuleDecls));
  ASSERT_TRUE(addRuleFrom(Book, "np.power(X, 2)", "X * X", RuleDecls));
  InputDecls Decls = {{"A", f64({9})}};
  int Applied = 0;
  // Inner rule firing exposes the outer pattern.
  std::string Out = rewriteWith(
      Book, "np.power(np.exp(np.log(A)), 2)", Decls, &Applied);
  EXPECT_EQ(Out, "A * A");
  EXPECT_EQ(Applied, 2);
}

TEST(RuleBookTest, RejectsRuleWithInventedVariables) {
  RuleBook Book;
  auto Lhs = parseProgram("A + A", {{"A", f64({4})}});
  auto Rhs = parseProgram("A * B", {{"A", f64({4})}, {"B", f64({4})}});
  EXPECT_FALSE(Book.addRule(Lhs.Prog->getRoot(), Rhs.Prog->getRoot()));
  EXPECT_EQ(Book.size(), 0u);
}

TEST(RuleBookTest, RejectsBareVariablePattern) {
  RuleBook Book;
  auto Lhs = parseProgram("A", {{"A", f64({4})}});
  auto Rhs = parseProgram("A + 0", {{"A", f64({4})}});
  EXPECT_FALSE(Book.addRule(Lhs.Prog->getRoot(), Rhs.Prog->getRoot()));
}

TEST(RuleBookTest, ConstantsMatchExactly) {
  RuleBook Book;
  InputDecls RuleDecls = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(Book, "X * 2", "X + X", RuleDecls));
  InputDecls Decls = {{"A", f64({4})}};
  EXPECT_EQ(rewriteWith(Book, "A * 2", Decls), "A + A");
  int Applied = -1;
  rewriteWith(Book, "A * 3", Decls, &Applied);
  EXPECT_EQ(Applied, 0);
}

TEST(RuleBookTest, IllTypedInstantiationDoesNotFire) {
  RuleBook Book;
  // Mined on square matrices; the transpose changes shape for non-square
  // subjects, so the RHS must not type-check there as an elementwise mul.
  InputDecls RuleDecls = {{"X", f64({3, 3})}, {"Y", f64({3, 3})}};
  ASSERT_TRUE(addRuleFrom(Book, "np.diag(np.dot(X, Y))",
                          "np.sum(X * Y.T, axis=1)", RuleDecls));
  // (4,6)x(6,4): diag(dot) is fine, but X * Y.T is (4,6)*(4,6)... which
  // broadcasts fine — pick (4,6)x(6,9) where diag itself would fail;
  // instead use a case where mul cannot broadcast: X (4,6), Y (6,4):
  // X * Y.T = (4,6)*(4,6): legal! The semantics still hold; verify it.
  InputDecls Decls = {{"P", f64({4, 6})}, {"Q", f64({6, 4})}};
  int Applied = 0;
  std::string Out =
      rewriteWith(Book, "np.diag(np.dot(P, Q))", Decls, &Applied);
  if (Applied == 1) {
    // The rule generalized; make sure it generalized *correctly*.
    auto Orig = parseProgram("np.diag(np.dot(P, Q))", Decls);
    auto New = parseProgram(Out, Decls);
    ASSERT_TRUE(New) << Out;
    RNG Rng(3);
    InputBinding Inputs;
    for (const auto &[Name, Type] : Decls) {
      Tensor T(Type.TShape);
      for (int64_t I = 0; I < T.getNumElements(); ++I)
        T.at(I) = Rng.positive();
      Inputs.emplace(Name, std::move(T));
    }
    EXPECT_TRUE(interpretProgram(*Orig.Prog, Inputs)
                    .allClose(interpretProgram(*New.Prog, Inputs)));
  }
}

TEST(RuleBookTest, VerifiedApplyRejectsNothingOnSoundRules) {
  RuleBook Book;
  InputDecls RuleDecls = {{"X", f64({4})}, {"Y", f64({4})}};
  ASSERT_TRUE(addRuleFrom(Book, "X * Y + X * Y", "2 * X * Y", RuleDecls));
  InputDecls Decls = {{"A", f64({7})}, {"B", f64({7})}};
  auto P = parseProgram("A * B + A * B", Decls);
  Program Dest;
  RNG Rng(11);
  int Applied = 0;
  const Node *Out =
      Book.applyVerified(Dest, P.Prog->getRoot(), Rng, 3, &Applied);
  EXPECT_EQ(Applied, 1);
  EXPECT_EQ(printNode(Out), "2 * A * B");
}

TEST(RuleBookTest, EndToEndMineAndReplay) {
  // Synthesize once, add the discovered rule, then rewrite a fresh
  // program at different shapes in milliseconds.
  InputDecls SynthDecls = {{"A", f64({4})}, {"B", f64({4})}};
  auto Original = parseProgram("np.exp(np.log(A) - np.log(B))", SynthDecls);
  synth::SynthesisConfig Config;
  Config.TimeoutSeconds = 30;
  synth::SynthesisResult R = synth::Synthesizer(Config).run(*Original.Prog);
  ASSERT_TRUE(R.Improved);

  RuleBook Book;
  ASSERT_TRUE(Book.addRule(Original.Prog->getRoot(),
                           R.Optimized->getRoot()));

  InputDecls Decls = {{"p", f64({3, 5})}, {"q", f64({3, 5})}};
  int Applied = 0;
  std::string Out = rewriteWith(
      Book, "np.exp(np.log(p) - np.log(q)) + p", Decls, &Applied);
  EXPECT_EQ(Applied, 1);
  EXPECT_EQ(Out, "p / q + p");
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(RuleBookSerializationTest, RoundTripPreservesRules) {
  RuleBook Book;
  InputDecls D1 = {{"X", f64({3, 3})}, {"Y", f64({3, 3})}};
  InputDecls D2 = {{"X", f64({4})}};
  ASSERT_TRUE(addRuleFrom(Book, "np.diag(np.dot(X, Y))",
                          "np.sum(X * Y.T, axis=1)", D1));
  ASSERT_TRUE(addRuleFrom(Book, "np.power(X, 2)", "X * X", D2));

  std::string Text = Book.serialize();
  EXPECT_NE(Text.find("rule\n"), std::string::npos);
  EXPECT_NE(Text.find("var X f64[3,3]"), std::string::npos);

  std::string Error;
  std::optional<RuleBook> Loaded = RuleBook::deserialize(Text, Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  EXPECT_EQ(Loaded->size(), 2u);

  // The reloaded book rewrites exactly like the original.
  InputDecls Decls = {{"A", f64({5, 5})}, {"B", f64({5, 5})}};
  EXPECT_EQ(rewriteWith(*Loaded, "np.diag(np.dot(A, B))", Decls),
            "np.sum(A * B.T, axis=1)");
  EXPECT_EQ(rewriteWith(*Loaded, "np.power(A, 2)", Decls), "A * A");
}

TEST(RuleBookSerializationTest, DeserializeRejectsGarbage) {
  std::string Error;
  EXPECT_FALSE(RuleBook::deserialize("rule\nlhs A + B\n", Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(RuleBook::deserialize("bogus line\n", Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(RuleBook::deserialize(
      "rule\nvar X f64[4]\nlhs X +\nrhs X\n", Error));
  EXPECT_FALSE(Error.empty());
}

TEST(RuleBookSerializationTest, EmptyTextIsEmptyBook) {
  std::string Error;
  std::optional<RuleBook> Loaded =
      RuleBook::deserialize("# just a comment\n", Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  EXPECT_EQ(Loaded->size(), 0u);
}

TEST(RuleBookSerializationTest, ScalarVariablesSerialize) {
  RuleBook Book;
  InputDecls Decls = {{"X", f64({4})},
                      {"s", TensorType{DType::Float64, Shape()}}};
  ASSERT_TRUE(addRuleFrom(Book, "X * s + X * s", "2 * s * X", Decls));
  std::string Error;
  std::optional<RuleBook> Loaded =
      RuleBook::deserialize(Book.serialize(), Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  EXPECT_EQ(Loaded->size(), 1u);
}
