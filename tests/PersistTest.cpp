//===- PersistTest.cpp - Crash-safe persistent store tests ----------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence subsystem's contract, bottom to top:
///
///   * Wire / XXHash / ExprCodec primitives round-trip and reject
///     malformed input without aborting.
///   * StensoStore survives reopen, truncates torn tails, quarantines
///     checksum-corrupt records, and reads a version-mismatched store as
///     cold — a deterministic corruption corpus (truncations + bit flips
///     at systematic offsets) asserts the store never serves a *wrong*
///     value, only a smaller cache.
///   * Crash-safety end to end: a child `stenso-opt --store` process is
///     SIGKILLed mid-search at seeded-random points; the resumed run must
///     converge to the bit-identical program / cost / AbortReason of an
///     uninterrupted cold run, at --jobs 1 and --jobs 4.
///
/// The child-process tests use the flops cost model and a generous
/// wall-clock timeout so every uninterrupted search runs to completion
/// (AbortReason=None): wall-clock-truncated searches stop at
/// scheduling-dependent points and are not comparable (DESIGN.md §8).
///
//===----------------------------------------------------------------------===//

#include "persist/Checkpoint.h"
#include "persist/ExprCodec.h"
#include "persist/StensoStore.h"
#include "persist/Wire.h"
#include "persist/XXHash.h"

#include "dsl/Parser.h"
#include "fuzz/Generator.h"
#include "support/RNG.h"
#include "symexec/SymbolicExecutor.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace stenso;
using namespace stenso::persist;
namespace fs = std::filesystem;

namespace {

/// A unique scratch directory, removed on scope exit.
class TempDir {
public:
  TempDir() {
    std::string Template =
        (fs::temp_directory_path() / "stenso-persist-XXXXXX").string();
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    const char *P = mkdtemp(Buf.data());
    EXPECT_NE(P, nullptr);
    Dir = P ? P : Template;
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  const std::string &path() const { return Dir; }
  std::string sub(const std::string &Name) const {
    return (fs::path(Dir) / Name).string();
  }

private:
  std::string Dir;
};

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

/// The single segment file of a store directory (fails the test when the
/// store rolled more than one — the fixtures keep batches small).
std::string onlySegment(const std::string &Dir) {
  std::string Found;
  for (const auto &E : fs::directory_iterator(Dir)) {
    std::string Name = E.path().filename().string();
    if (Name.rfind("seg-", 0) == 0) {
      EXPECT_TRUE(Found.empty()) << "more than one segment";
      Found = E.path().string();
    }
  }
  EXPECT_FALSE(Found.empty()) << "no segment under " << Dir;
  return Found;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(IS)),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS.write(reinterpret_cast<const char *>(Bytes.data()),
           static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

//===----------------------------------------------------------------------===//
// XXHash / Wire
//===----------------------------------------------------------------------===//

TEST(XXHashTest, KnownAnswers) {
  // Reference vectors from the xxHash specification.
  EXPECT_EQ(xxhash64(nullptr, 0), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(xxhash64("abc", 3), 0x44BC2CF5AD770999ull);
  std::string Long = "xxhash64 is a fast non-cryptographic hash function";
  EXPECT_EQ(xxhash64(Long.data(), Long.size()),
            xxhash64(Long.data(), Long.size()));
  EXPECT_NE(xxhash64(Long.data(), Long.size()),
            xxhash64(Long.data(), Long.size(), /*Seed=*/1));
}

TEST(WireTest, RoundTrip) {
  ByteWriter W;
  W.putU8(7);
  W.putU32(0xDEADBEEFu);
  W.putU64(0x0123456789ABCDEFull);
  W.putI64(-42);
  W.putF64(2.5);
  W.putString("phi");
  ByteReader R(W.bytes());
  EXPECT_EQ(R.getU8(), 7);
  EXPECT_EQ(R.getU32(), 0xDEADBEEFu);
  EXPECT_EQ(R.getU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.getI64(), -42);
  EXPECT_EQ(R.getF64(), 2.5);
  EXPECT_EQ(R.getString(), "phi");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(WireTest, TruncationLatches) {
  ByteWriter W;
  W.putU32(12345);
  std::vector<uint8_t> Bytes = W.takeBytes();
  Bytes.pop_back();
  ByteReader R(Bytes);
  (void)R.getU32();
  EXPECT_FALSE(R.ok());
  // Latched: later reads stay zero/failed even if bytes remain.
  EXPECT_EQ(R.getU8(), 0);
  EXPECT_FALSE(R.ok());
}

//===----------------------------------------------------------------------===//
// ExprCodec
//===----------------------------------------------------------------------===//

namespace {

/// Symbolically executes \p Source under \p Decls, returning the spec.
symexec::SymTensor specOf(sym::ExprContext &Ctx, const std::string &Source,
                          const dsl::InputDecls &Decls) {
  auto R = dsl::parseProgram(Source, Decls);
  EXPECT_TRUE(R) << Source << ": " << R.Error;
  return symexec::computeSpec(*R.Prog, Ctx);
}

dsl::InputDecls matDecls() {
  return {{"A", dsl::TensorType{DType::Float64, Shape({3, 3})}},
          {"B", dsl::TensorType{DType::Float64, Shape({3, 3})}}};
}

} // namespace

TEST(ExprCodecTest, SpecRoundTripsToIdenticalNodes) {
  sym::ExprContext Ctx;
  for (const char *Source :
       {"np.diag(np.dot(A, B))", "np.sum(A * B)", "np.exp(A) / (A + B)"}) {
    symexec::SymTensor Spec = specOf(Ctx, Source, matDecls());
    std::vector<uint8_t> Bytes = encodeSymTensor(Spec);
    // Same context: canonical forms are fixed points, so decoding must
    // reproduce the *identical* interned nodes.
    std::optional<symexec::SymTensor> Back = decodeSymTensor(Bytes, Ctx);
    ASSERT_TRUE(Back.has_value()) << Source;
    ASSERT_EQ(Back->getShape(), Spec.getShape());
    for (int64_t I = 0; I < Spec.getNumElements(); ++I)
      EXPECT_EQ(Back->at(I), Spec.at(I)) << Source << " element " << I;
    // Fresh context: the same bytes decode and re-encode to the same
    // bytes (content addressing is context-independent).
    sym::ExprContext Fresh;
    std::optional<symexec::SymTensor> Again = decodeSymTensor(Bytes, Fresh);
    ASSERT_TRUE(Again.has_value()) << Source;
    EXPECT_EQ(encodeSymTensor(*Again), Bytes) << Source;
  }
}

TEST(ExprCodecTest, MalformedBuffersAreRejectedNotFatal) {
  sym::ExprContext Ctx;
  symexec::SymTensor Spec = specOf(Ctx, "np.dot(A, B)", matDecls());
  std::vector<uint8_t> Bytes = encodeSymTensor(Spec);
  // Every strict prefix must fail cleanly.
  for (size_t Len : {size_t(0), size_t(1), Bytes.size() / 2,
                     Bytes.size() - 1}) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    sym::ExprContext Fresh;
    EXPECT_FALSE(decodeSymTensor(Prefix, Fresh).has_value()) << Len;
  }
  // A flipped byte either fails or decodes to *some* well-formed tensor;
  // it must never abort.  (The store's verify gate rejects wrong values.)
  for (size_t I = 0; I < Bytes.size(); I += 7) {
    std::vector<uint8_t> Mutated = Bytes;
    Mutated[I] ^= 0x20;
    sym::ExprContext Fresh;
    (void)decodeSymTensor(Mutated, Fresh);
  }
}

TEST(ExprCodecTest, FuzzGeneratedSpecsRoundTrip) {
  // Property form of the round trip, over the fuzzer's program
  // distribution (ragged shapes, rank-3 inputs, comprehensions, larger
  // extents) instead of three hand-picked sources.  STENSO_SEED in the
  // environment reproduces a failure.
  uint64_t Seed = seedFromEnv(0xc0dec);
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(Seed));
  fuzz::GeneratorConfig GenConfig;
  GenConfig.MaxOps = 5; // keep specs small enough to encode quickly
  fuzz::ProgramGenerator Gen(Seed, GenConfig);
  for (int I = 0; I < 20; ++I) {
    fuzz::FuzzCase Case = Gen.generate();
    dsl::ParseResult Parsed = fuzz::parseCase(Case);
    ASSERT_TRUE(Parsed) << Case.Source;
    sym::ExprContext Ctx;
    symexec::SymTensor Spec = symexec::computeSpec(*Parsed.Prog, Ctx);
    std::vector<uint8_t> Bytes = encodeSymTensor(Spec);

    // Same context: identical interned nodes (structural equality at
    // its strongest).
    std::optional<symexec::SymTensor> Back = decodeSymTensor(Bytes, Ctx);
    ASSERT_TRUE(Back.has_value()) << Case.Source;
    EXPECT_TRUE(Back->identicalTo(Spec)) << Case.Source;

    // Fresh context: content addressing — decode + re-encode is the
    // identity on bytes.
    sym::ExprContext Fresh;
    std::optional<symexec::SymTensor> Again = decodeSymTensor(Bytes, Fresh);
    ASSERT_TRUE(Again.has_value()) << Case.Source;
    EXPECT_EQ(encodeSymTensor(*Again), Bytes) << Case.Source;

    // Truncated buffers are rejected, never fatal.
    for (size_t Len : {size_t(0), Bytes.size() / 3, Bytes.size() - 1}) {
      std::vector<uint8_t> Prefix(Bytes.begin(),
                                  Bytes.begin() + static_cast<long>(Len));
      sym::ExprContext Scratch;
      EXPECT_FALSE(decodeSymTensor(Prefix, Scratch).has_value())
          << Case.Source << " truncated to " << Len;
    }
  }
}

//===----------------------------------------------------------------------===//
// Checkpoint codec
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, RoundTripAndVersionReject) {
  SearchCheckpoint C;
  C.ProgramKey = programKey("np.diag(np.dot(A, B))", "v1|model=flops");
  C.Final = true;
  C.BestCost = 20736;
  C.BestProgram = "np.sum(A * np.transpose(B), axis=1)";
  C.AbortCode = 0;
  C.SolverCalls = 526575;
  C.FrontierDigest = 0xFEEDFACEull;
  std::vector<uint8_t> Bytes = encodeCheckpoint(C);
  std::optional<SearchCheckpoint> Back = decodeCheckpoint(Bytes);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->ProgramKey, C.ProgramKey);
  EXPECT_EQ(Back->Final, C.Final);
  EXPECT_EQ(Back->BestCost, C.BestCost);
  EXPECT_EQ(Back->BestProgram, C.BestProgram);
  EXPECT_EQ(Back->SolverCalls, C.SolverCalls);
  EXPECT_EQ(Back->FrontierDigest, C.FrontierDigest);
  // Unknown version byte reads as "no checkpoint", not garbage.
  std::vector<uint8_t> Wrong = Bytes;
  Wrong[0] ^= 0xFF;
  EXPECT_FALSE(decodeCheckpoint(Wrong).has_value());
  Bytes.push_back(0); // trailing junk
  EXPECT_FALSE(decodeCheckpoint(Bytes).has_value());
}

TEST(CheckpointTest, ProgramKeySeparatesProgramAndConfig) {
  uint64_t A = programKey("np.dot(A, B)", "v1|model=flops");
  EXPECT_NE(A, programKey("np.dot(B, A)", "v1|model=flops"));
  EXPECT_NE(A, programKey("np.dot(A, B)", "v1|model=measured"));
  EXPECT_EQ(A, programKey("np.dot(A, B)", "v1|model=flops"));
}

//===----------------------------------------------------------------------===//
// StensoStore: durability and recovery
//===----------------------------------------------------------------------===//

TEST(StensoStoreTest, PutGetFlushReopen) {
  TempDir Tmp;
  std::string Dir = Tmp.sub("store");
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    EXPECT_TRUE(Store.onDisk());
    EXPECT_FALSE(Store.readOnly());
    EXPECT_FALSE(Store.get(bytesOf("absent")).has_value());
    Store.put(bytesOf("k1"), bytesOf("v1"));
    Store.put(bytesOf("k2"), bytesOf("v2"));
    // Visible before any flush.
    auto V = Store.get(bytesOf("k1"));
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, bytesOf("v1"));
    Store.flush();
    EXPECT_EQ(Store.size(), 2u);
  }
  // Reopen: both records survive; the last put for a key wins.
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    EXPECT_EQ(Store.size(), 2u);
    auto V2 = Store.get(bytesOf("k2"));
    ASSERT_TRUE(V2.has_value());
    EXPECT_EQ(*V2, bytesOf("v2"));
    Store.put(bytesOf("k2"), bytesOf("v2-updated"));
    Store.flush();
  }
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    auto V2 = Store.get(bytesOf("k2"));
    ASSERT_TRUE(V2.has_value());
    EXPECT_EQ(*V2, bytesOf("v2-updated"));
    StensoStore::Stats S = Store.stats();
    EXPECT_GE(S.RecordsRecovered, 3);
    EXPECT_EQ(S.CorruptRecords, 0);
    EXPECT_EQ(S.TornBytesTruncated, 0);
  }
}

TEST(StensoStoreTest, ReadOnlyOptionNeverWrites) {
  TempDir Tmp;
  std::string Dir = Tmp.sub("store");
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    Store.put(bytesOf("k"), bytesOf("v"));
    Store.flush();
  }
  uintmax_t SizeBefore = fs::file_size(onlySegment(Dir));
  {
    StensoStore::Options O;
    O.Dir = Dir;
    O.ReadOnly = true;
    StensoStore Store(O);
    EXPECT_TRUE(Store.readOnly());
    ASSERT_TRUE(Store.get(bytesOf("k")).has_value());
    Store.put(bytesOf("k2"), bytesOf("v2")); // cached in memory only
    ASSERT_TRUE(Store.get(bytesOf("k2")).has_value());
    Store.flush();
  }
  // Nothing hit the disk, and no second segment appeared.
  EXPECT_EQ(fs::file_size(onlySegment(Dir)), SizeBefore);
}

TEST(StensoStoreTest, TornTailIsTruncatedOnReopen) {
  TempDir Tmp;
  std::string Dir = Tmp.sub("store");
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    for (int I = 0; I < 8; ++I)
      Store.put(bytesOf("key" + std::to_string(I)),
                bytesOf("value" + std::to_string(I)));
    Store.flush();
  }
  // Simulate SIGKILL mid-append: half a record's worth of garbage.
  std::string Seg = onlySegment(Dir);
  {
    std::ofstream OS(Seg, std::ios::binary | std::ios::app);
    uint32_t KeyLen = 100, ValLen = 100;
    OS.write(reinterpret_cast<const char *>(&KeyLen), 4);
    OS.write(reinterpret_cast<const char *>(&ValLen), 4);
    OS << "only part of the promised payload";
  }
  uintmax_t TornSize = fs::file_size(Seg);
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    StensoStore::Stats S = Store.stats();
    EXPECT_EQ(S.RecordsRecovered, 8);
    EXPECT_GT(S.TornBytesTruncated, 0);
    EXPECT_EQ(S.CorruptRecords, 0);
    for (int I = 0; I < 8; ++I) {
      auto V = Store.get(bytesOf("key" + std::to_string(I)));
      ASSERT_TRUE(V.has_value()) << I;
      EXPECT_EQ(*V, bytesOf("value" + std::to_string(I)));
    }
  }
  // The tail is physically gone: the next open sees a clean segment.
  EXPECT_LT(fs::file_size(Seg), TornSize);
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    EXPECT_EQ(Store.stats().TornBytesTruncated, 0);
  }
}

TEST(StensoStoreTest, ChecksumCorruptionQuarantinesNotServes) {
  TempDir Tmp;
  std::string Dir = Tmp.sub("store");
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    for (int I = 0; I < 8; ++I)
      Store.put(bytesOf("key" + std::to_string(I)),
                bytesOf("value" + std::to_string(I)));
    Store.flush();
  }
  // Flip one bit in the middle of the payload area.
  std::string Seg = onlySegment(Dir);
  std::vector<uint8_t> Bytes = readFile(Seg);
  Bytes[Bytes.size() / 2] ^= 0x01;
  writeFile(Seg, Bytes);
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    StensoStore::Stats S = Store.stats();
    // Strictly fewer records; quarantine kept the evidence.
    EXPECT_LT(S.RecordsRecovered, 8);
    EXPECT_GE(S.CorruptRecords + S.SegmentsQuarantined, 1);
    EXPECT_TRUE(fs::exists(fs::path(Dir) / "quarantine"));
    // Whatever survived is byte-exact.
    for (int I = 0; I < 8; ++I) {
      auto V = Store.get(bytesOf("key" + std::to_string(I)));
      if (V.has_value()) {
        EXPECT_EQ(*V, bytesOf("value" + std::to_string(I)));
      }
    }
  }
}

TEST(StensoStoreTest, VersionMismatchReadsAsColdStore) {
  TempDir Tmp;
  std::string Dir = Tmp.sub("store");
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    Store.put(bytesOf("k"), bytesOf("v"));
    Store.flush();
  }
  // Bump the on-disk format version field (bytes 4..7 after the magic).
  std::string Seg = onlySegment(Dir);
  std::vector<uint8_t> Bytes = readFile(Seg);
  ASSERT_GT(Bytes.size(), 8u);
  Bytes[4] = StensoStore::FormatVersion + 1;
  writeFile(Seg, Bytes);
  {
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O);
    StensoStore::Stats S = Store.stats();
    EXPECT_EQ(S.VersionSkipped, 1);
    EXPECT_EQ(S.RecordsRecovered, 0);
    EXPECT_FALSE(Store.get(bytesOf("k")).has_value());
    // Still fully usable as a fresh store.
    Store.put(bytesOf("k2"), bytesOf("v2"));
    Store.flush();
    EXPECT_FALSE(Store.degraded());
  }
}

TEST(StensoStoreTest, UnusableDirectoryDegradesToMemoryOnly) {
  TempDir Tmp;
  // A *file* where the store wants a directory: creation must fail, and
  // the store must degrade to a working in-memory cache.
  std::string FilePath = Tmp.sub("not-a-dir");
  writeFile(FilePath, bytesOf("occupied"));
  StensoStore::Options O;
  O.Dir = (fs::path(FilePath) / "store").string();
  StensoStore Store(O);
  EXPECT_FALSE(Store.onDisk());
  Store.put(bytesOf("k"), bytesOf("v"));
  auto V = Store.get(bytesOf("k"));
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, bytesOf("v"));
  Store.flush(); // must be a safe no-op
}

/// Deterministic corruption corpus: for a grid of truncation points and
/// single-bit flips over a real segment, reopening must never crash and
/// must never serve a value that differs from what was written.
TEST(StensoStoreTest, CorruptionCorpusNeverServesWrongBytes) {
  TempDir Tmp;
  std::string Pristine = Tmp.sub("pristine");
  const int N = 32;
  auto KeyOf = [](int I) { return bytesOf("corpus-key-" + std::to_string(I)); };
  auto ValOf = [](int I) {
    std::string V = "corpus-value-" + std::to_string(I) + "-";
    V.append(static_cast<size_t>(17 + I % 23), 'x');
    return bytesOf(V);
  };
  {
    StensoStore::Options O;
    O.Dir = Pristine;
    StensoStore Store(O);
    for (int I = 0; I < N; ++I)
      Store.put(KeyOf(I), ValOf(I));
    Store.flush();
  }
  std::vector<uint8_t> Good = readFile(onlySegment(Pristine));
  ASSERT_GT(Good.size(), 64u);

  int Case = 0;
  auto Check = [&](std::vector<uint8_t> Mutated, const char *What) {
    std::string Dir = Tmp.sub("case-" + std::to_string(Case++));
    fs::create_directories(Dir);
    writeFile((fs::path(Dir) / "seg-000001.log").string(), Mutated);
    StensoStore::Options O;
    O.Dir = Dir;
    StensoStore Store(O); // must not crash
    for (int I = 0; I < N; ++I) {
      auto V = Store.get(KeyOf(I));
      if (V.has_value()) {
        EXPECT_EQ(*V, ValOf(I)) << What << " served wrong bytes for " << I;
      }
    }
    std::error_code EC;
    fs::remove_all(Dir, EC);
  };

  // Truncations at 13 evenly spaced points (including inside the header).
  for (int Frac = 0; Frac <= 12; ++Frac)
    Check(std::vector<uint8_t>(
              Good.begin(),
              Good.begin() + static_cast<long>(Good.size() * Frac / 12)),
          "truncation");
  // Single-bit flips marching through the file, every bit position.
  for (size_t Off = 0; Off < Good.size(); Off += 41) {
    std::vector<uint8_t> Mutated = Good;
    Mutated[Off] ^= static_cast<uint8_t>(1u << (Off % 8));
    Check(std::move(Mutated), "bit flip");
  }
}

//===----------------------------------------------------------------------===//
// Store-backed differential: parallel + store == sequential + no store
//===----------------------------------------------------------------------===//

/// Exercises the concurrent store surface (shard puts from driver
/// threads, async flushes on the search pool, the flush hook) under the
/// determinism contract: a jobs=4 search writing a cold store, and a
/// jobs=4 search reading it warm, must both produce the sequential
/// no-store result.  This is the case the TSan leg runs.
TEST(PersistDifferentialTest, StoreBackedParallelMatchesSequential) {
  dsl::InputDecls Decls = {
      {"P", dsl::TensorType{DType::Float64, Shape({3})}},
      {"Q", dsl::TensorType{DType::Float64, Shape({3})}}};
  auto Parsed = dsl::parseProgram("np.exp(np.log(P) - np.log(Q))", Decls);
  ASSERT_TRUE(Parsed) << Parsed.Error;

  auto ConfigAt = [](int Jobs, StensoStore *Store) {
    synth::SynthesisConfig C;
    C.CostModelName = "flops";
    C.TimeoutSeconds = 120;
    C.Jobs = Jobs;
    C.Store = Store;
    return C;
  };
  synth::SynthesisResult Baseline =
      synth::Synthesizer(ConfigAt(1, nullptr)).run(*Parsed.Prog);
  ASSERT_EQ(Baseline.Abort, synth::AbortReason::None);

  TempDir Tmp;
  StensoStore::Options O;
  O.Dir = Tmp.sub("differential.stenso-cache");
  O.FlushThreshold = 32; // small batches: more concurrent flush traffic
  {
    StensoStore Cold(O);
    synth::SynthesisResult Parallel =
        synth::Synthesizer(ConfigAt(4, &Cold)).run(*Parsed.Prog);
    EXPECT_EQ(Parallel.OptimizedSource, Baseline.OptimizedSource);
    EXPECT_EQ(Parallel.OptimizedCost, Baseline.OptimizedCost);
    EXPECT_EQ(Parallel.Abort, Baseline.Abort);
    EXPECT_GT(Parallel.Stats.StorePuts, 0);
  }
  {
    StensoStore Warm(O);
    synth::SynthesisResult Resumed =
        synth::Synthesizer(ConfigAt(4, &Warm)).run(*Parsed.Prog);
    EXPECT_EQ(Resumed.OptimizedSource, Baseline.OptimizedSource);
    EXPECT_EQ(Resumed.OptimizedCost, Baseline.OptimizedCost);
    EXPECT_EQ(Resumed.Abort, Baseline.Abort);
    EXPECT_GT(Resumed.Stats.StoreHits, 0);
    EXPECT_EQ(Resumed.Stats.StoreCheckpointLoaded, 1);
  }
}

//===----------------------------------------------------------------------===//
// End-to-end crash safety: SIGKILL a child stenso-opt, resume, compare
//===----------------------------------------------------------------------===//

namespace {

struct OptRun {
  bool Signaled = false;
  int ExitCode = -1;
  std::string Stdout;   // the optimized program
  std::string StatsJson;
};

/// Runs `stenso-opt --program diag_dot --cost_estimator flops` as a child
/// process.  KillAfterMs >= 0 SIGKILLs the child after that delay (if it
/// is still running).  Never throws; failures surface as EXPECT failures
/// plus a defaulted OptRun.
OptRun runOpt(const TempDir &Tmp, const std::string &StoreDir, int Jobs,
              int KillAfterMs, int Tag) {
  std::string Base = "run-" + std::to_string(Tag);
  std::string OutPath = Tmp.sub(Base + ".out");
  std::string ErrPath = Tmp.sub(Base + ".err");
  std::string JsonPath = Tmp.sub(Base + ".json");

  std::vector<std::string> Args = {
      STENSO_OPT_BINARY, "--program",        STENSO_DIAG_DOT_PROGRAM,
      "--cost_estimator", "flops",           "--timeout",
      "300",              "--jobs",          std::to_string(Jobs),
      "--stats-json",     JsonPath};
  if (StoreDir.empty())
    Args.push_back("--no-store");
  else {
    Args.push_back("--store");
    Args.push_back(StoreDir);
  }

  pid_t Pid = fork();
  if (Pid == 0) {
    int OutFd = open(OutPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    int ErrFd = open(ErrPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    dup2(OutFd, STDOUT_FILENO);
    dup2(ErrFd, STDERR_FILENO);
    std::vector<char *> Argv;
    for (std::string &A : Args)
      Argv.push_back(A.data());
    Argv.push_back(nullptr);
    execv(Argv[0], Argv.data());
    _exit(127);
  }
  OptRun Run;
  if (Pid < 0) {
    ADD_FAILURE() << "fork failed";
    return Run;
  }

  int Status = 0;
  if (KillAfterMs >= 0) {
    // Poll so a child that finishes early is reaped without a kill.
    int Waited = 0;
    while (Waited < KillAfterMs) {
      if (waitpid(Pid, &Status, WNOHANG) == Pid) {
        Run.Signaled = WIFSIGNALED(Status);
        Run.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
        Run.Stdout = std::string(
            reinterpret_cast<const char *>(readFile(OutPath).data()),
            readFile(OutPath).size());
        Run.StatsJson = std::string(
            reinterpret_cast<const char *>(readFile(JsonPath).data()),
            readFile(JsonPath).size());
        return Run;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      Waited += 10;
    }
    kill(Pid, SIGKILL);
  }
  waitpid(Pid, &Status, 0);
  Run.Signaled = WIFSIGNALED(Status);
  Run.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  std::vector<uint8_t> Out = readFile(OutPath);
  Run.Stdout = std::string(reinterpret_cast<const char *>(Out.data()),
                           Out.size());
  std::vector<uint8_t> Json = readFile(JsonPath);
  Run.StatsJson = std::string(reinterpret_cast<const char *>(Json.data()),
                              Json.size());
  return Run;
}

/// Extracts `"name": value` (up to the next ',' or '\n') from stats JSON.
std::string jsonField(const std::string &Json, const std::string &Name) {
  std::string Needle = "\"" + Name + "\": ";
  size_t At = Json.find(Needle);
  if (At == std::string::npos)
    return "<missing>";
  At += Needle.size();
  size_t End = Json.find_first_of(",\n", At);
  return Json.substr(At, End - At);
}

/// Asserts two completed runs are bit-identical in result terms.  The
/// solver-call count is part of the contract only at jobs=1: with
/// workers, branch-and-bound explores a schedule-dependent node set (the
/// *result* is still deterministic — DESIGN.md §8).
void expectSameResult(const OptRun &A, const OptRun &B, int Jobs,
                      const char *What) {
  EXPECT_EQ(A.Stdout, B.Stdout) << What << ": program differs";
  EXPECT_EQ(jsonField(A.StatsJson, "optimized_cost"),
            jsonField(B.StatsJson, "optimized_cost"))
      << What << ": cost differs";
  EXPECT_EQ(jsonField(A.StatsJson, "abort"), jsonField(B.StatsJson, "abort"))
      << What << ": abort reason differs";
  if (Jobs == 1) {
    EXPECT_EQ(jsonField(A.StatsJson, "solver_calls"),
              jsonField(B.StatsJson, "solver_calls"))
        << What << ": solver call count differs";
  }
}

void runKillResumeAt(int Jobs) {
  TempDir Tmp;
  // Reference: an uninterrupted run with no store at all.
  OptRun Reference = runOpt(Tmp, "", Jobs, /*KillAfterMs=*/-1, 0);
  ASSERT_EQ(Reference.ExitCode, 0);
  ASSERT_EQ(jsonField(Reference.StatsJson, "abort"), "\"None\"");

  // Cold store run: same result, store populated.
  std::string ColdDir = Tmp.sub("cold.stenso-cache");
  OptRun Cold = runOpt(Tmp, ColdDir, Jobs, -1, 1);
  ASSERT_EQ(Cold.ExitCode, 0);
  expectSameResult(Reference, Cold, Jobs, "cold-vs-nostore");

  // Warm rerun on the populated store: same result again, served warm.
  OptRun Warm = runOpt(Tmp, ColdDir, Jobs, -1, 2);
  ASSERT_EQ(Warm.ExitCode, 0);
  expectSameResult(Reference, Warm, Jobs, "warm-vs-nostore");
  EXPECT_NE(jsonField(Warm.StatsJson, "store_hits"), "0");

  // Kill-at-seeded-random-points, then resume to completion.  The store
  // accumulates across kills — exactly the crash-loop a user would hit.
  std::mt19937 Rng(0x5EED0000u + static_cast<unsigned>(Jobs));
  std::uniform_int_distribution<int> KillMs(150, 2500);
  std::string KillDir = Tmp.sub("kill.stenso-cache");
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    OptRun Killed = runOpt(Tmp, KillDir, Jobs, KillMs(Rng), 10 + Attempt);
    if (!Killed.Signaled && Killed.ExitCode == 0) {
      // The child out-raced the kill: already a completed run.
      expectSameResult(Reference, Killed, Jobs, "early-finish-vs-nostore");
      break;
    }
    EXPECT_TRUE(Killed.Signaled);
  }
  OptRun Resumed = runOpt(Tmp, KillDir, Jobs, -1, 20);
  ASSERT_EQ(Resumed.ExitCode, 0);
  expectSameResult(Reference, Resumed, Jobs, "kill-resume-vs-nostore");
}

} // namespace

TEST(PersistCrashTest, KillResumeConvergesSequential) { runKillResumeAt(1); }

TEST(PersistCrashTest, KillResumeConvergesParallel) { runKillResumeAt(4); }
