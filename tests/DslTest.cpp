//===- DslTest.cpp - Unit tests for the tensor DSL ------------------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/FlopCost.h"
#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "dsl/Printer.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;

static TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

static Tensor randomTensor(Shape S, RNG &Rng) {
  Tensor T(S);
  for (int64_t I = 0; I < T.getNumElements(); ++I)
    T.at(I) = Rng.positive();
  return T;
}

//===----------------------------------------------------------------------===//
// Type inference
//===----------------------------------------------------------------------===//

TEST(InferTypeTest, ElementwiseBroadcast) {
  auto T = inferType(OpKind::Add, {f64({3, 1}), f64({1, 4})}, {});
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->TShape, Shape({3, 4}));
  EXPECT_FALSE(inferType(OpKind::Add, {f64({3}), f64({4})}, {}).has_value());
}

TEST(InferTypeTest, LessIsBool) {
  auto T = inferType(OpKind::Less, {f64({2}), f64({2})}, {});
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(T->Dtype, DType::Bool);
}

TEST(InferTypeTest, ArithmeticRejectsBool) {
  TensorType B{DType::Bool, Shape({2})};
  EXPECT_FALSE(inferType(OpKind::Add, {B, B}, {}).has_value());
}

TEST(InferTypeTest, DotShapes) {
  EXPECT_EQ(inferType(OpKind::Dot, {f64({2, 3}), f64({3, 4})}, {})->TShape,
            Shape({2, 4}));
  EXPECT_EQ(inferType(OpKind::Dot, {f64({2, 3}), f64({3})}, {})->TShape,
            Shape({2}));
  EXPECT_EQ(inferType(OpKind::Dot, {f64({3}), f64({3})}, {})->TShape, Shape());
  EXPECT_FALSE(inferType(OpKind::Dot, {f64({2, 3}), f64({4, 2})}, {}));
}

TEST(InferTypeTest, ReductionsAndAxes) {
  NodeAttrs Attrs;
  Attrs.Axis = -1;
  EXPECT_EQ(inferType(OpKind::Sum, {f64({2, 3})}, Attrs)->TShape, Shape({2}));
  Attrs.Axis = 2;
  EXPECT_FALSE(inferType(OpKind::Sum, {f64({2, 3})}, Attrs).has_value());
  EXPECT_EQ(inferType(OpKind::SumAll, {f64({2, 3})}, {})->TShape, Shape());
}

TEST(InferTypeTest, WhereRequiresBoolCondition) {
  TensorType B{DType::Bool, Shape({2})};
  EXPECT_TRUE(inferType(OpKind::Where, {B, f64({2}), f64({2})}, {}));
  EXPECT_FALSE(inferType(OpKind::Where, {f64({2}), f64({2}), f64({2})}, {}));
}

TEST(InferTypeTest, TransposeValidation) {
  NodeAttrs Attrs;
  EXPECT_EQ(inferType(OpKind::Transpose, {f64({2, 3})}, Attrs)->TShape,
            Shape({3, 2}));
  Attrs.Perm = {0, 0};
  EXPECT_FALSE(inferType(OpKind::Transpose, {f64({2, 3})}, Attrs));
  Attrs.Perm = {1, 2, 0};
  EXPECT_EQ(inferType(OpKind::Transpose, {f64({2, 3, 4})}, Attrs)->TShape,
            Shape({3, 4, 2}));
}

TEST(InferTypeTest, ReshapeElementCount) {
  NodeAttrs Attrs;
  Attrs.ShapeAttr = Shape({6});
  EXPECT_TRUE(inferType(OpKind::Reshape, {f64({2, 3})}, Attrs));
  Attrs.ShapeAttr = Shape({5});
  EXPECT_FALSE(inferType(OpKind::Reshape, {f64({2, 3})}, Attrs));
}

TEST(InferTypeTest, StackAndTensordot) {
  NodeAttrs Attrs;
  Attrs.Axis = 0;
  EXPECT_EQ(inferType(OpKind::Stack, {f64({3}), f64({3})}, Attrs)->TShape,
            Shape({2, 3}));
  EXPECT_FALSE(inferType(OpKind::Stack, {f64({3}), f64({4})}, Attrs));

  NodeAttrs TD;
  TD.AxesA = {1};
  TD.AxesB = {0};
  EXPECT_EQ(
      inferType(OpKind::Tensordot, {f64({2, 3}), f64({3, 5})}, TD)->TShape,
      Shape({2, 5}));
}

//===----------------------------------------------------------------------===//
// Program construction and cloning
//===----------------------------------------------------------------------===//

TEST(ProgramTest, TryMakeReturnsNullOnTypeError) {
  Program P;
  const Node *A = P.input("A", f64({2, 3}));
  const Node *B = P.input("B", f64({4}));
  EXPECT_EQ(P.tryMake(OpKind::Add, {A, B}), nullptr);
  EXPECT_NE(P.tryMake(OpKind::Transpose, {A}), nullptr);
}

TEST(ProgramTest, InputsAreInternedByName) {
  Program P;
  const Node *A1 = P.input("A", f64({2}));
  const Node *A2 = P.input("A", f64({2}));
  EXPECT_EQ(A1, A2);
  EXPECT_EQ(P.getInputs().size(), 1u);
}

TEST(ProgramTest, CloneIntoPreservesSemantics) {
  Program P;
  const Node *A = P.input("A", f64({2, 2}));
  const Node *B = P.input("B", f64({2, 2}));
  P.setRoot(P.dot(P.multiply(A, B), P.transpose(A)));

  Program Q;
  const Node *Cloned = Program::cloneInto(Q, P.getRoot());
  Q.setRoot(Cloned);

  RNG Rng(5);
  InputBinding Inputs{{"A", randomTensor(Shape({2, 2}), Rng)},
                      {"B", randomTensor(Shape({2, 2}), Rng)}};
  EXPECT_TRUE(
      interpretProgram(P, Inputs).allClose(interpretProgram(Q, Inputs)));
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, ParsesOperators) {
  InputDecls Decls = {{"A", f64({2, 2})}, {"B", f64({2, 2})}};
  auto R = parseProgram("A * B + A / B - A", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getKind(), OpKind::Subtract);
}

TEST(ParserTest, ParsesMatmulOperator) {
  InputDecls Decls = {{"x", f64({3})}, {"A", f64({3, 3})}};
  auto R = parseProgram("x.T @ A @ x", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getKind(), OpKind::Dot);
  EXPECT_TRUE(R.Prog->getRoot()->getType().TShape.isScalar());
}

TEST(ParserTest, ParsesCallsAndKeywords) {
  InputDecls Decls = {{"A", f64({4, 5})}};
  auto R = parseProgram("np.sum(np.power(A, 2), axis=-1)", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getKind(), OpKind::Sum);
  EXPECT_EQ(R.Prog->getRoot()->getType().TShape, Shape({4}));
}

TEST(ParserTest, ParsesUnaryMinusAndPower) {
  InputDecls Decls = {{"A", f64({2})}};
  auto R = parseProgram("-A ** 2 + 3", Decls);
  ASSERT_TRUE(R) << R.Error;
  // Python precedence: -(A**2) + 3.
  EXPECT_EQ(R.Prog->getRoot()->getKind(), OpKind::Add);
}

TEST(ParserTest, ParsesReshapeAndTranspose) {
  InputDecls Decls = {{"A", f64({2, 3, 1, 4})}, {"B", f64({4, 5})}};
  auto R = parseProgram(
      "np.reshape(np.dot(np.reshape(A, (2, 3, 1, 4)), B), (2, 3, 5))", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getType().TShape, Shape({2, 3, 5}));

  auto R2 = parseProgram("np.transpose(np.transpose(A, (1, 2, 0, 3)))", Decls);
  ASSERT_TRUE(R2) << R2.Error;
}

TEST(ParserTest, ParsesStackList) {
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  auto R = parseProgram("np.stack([A, B, A], axis=0)", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getType().TShape, Shape({3, 3}));
}

TEST(ParserTest, ParsesComprehension) {
  InputDecls Decls = {{"A", f64({4})}, {"x", f64({})}, {"y", f64({})}};
  auto R = parseProgram("np.stack([(x*a + (1 - a)*y) for a in A])", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getKind(), OpKind::Comprehension);
  EXPECT_EQ(R.Prog->getRoot()->getType().TShape, Shape({4}));
}

TEST(ParserTest, ParsesComprehensionWithAxis) {
  InputDecls Decls = {{"A", f64({3, 2})}};
  auto R = parseProgram("np.stack([x * 2 for x in A], axis=0)", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getType().TShape, Shape({3, 2}));
}

TEST(ParserTest, ParsesTensordot) {
  InputDecls Decls = {{"A", f64({2, 3})}, {"B", f64({3, 5})}};
  auto R = parseProgram("np.tensordot(A, B, axes=([1], [0]))", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getType().TShape, Shape({2, 5}));
}

TEST(ParserTest, ParsesWhereTriuFull) {
  InputDecls Decls = {{"A", f64({3, 3})}, {"B", f64({3, 3})}};
  auto R = parseProgram(
      "np.where(A < B, np.triu(A), np.full((3, 3), 0))", Decls);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getRoot()->getKind(), OpKind::Where);
}

TEST(ParserTest, ReportsUnknownVariable) {
  auto R = parseProgram("A + Bogus", {{"A", f64({2})}});
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("Bogus"), std::string::npos);
}

TEST(ParserTest, ReportsTypeError) {
  auto R = parseProgram("A + B", {{"A", f64({2})}, {"B", f64({3})}});
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("type error"), std::string::npos);
}

TEST(ParserTest, ReportsSyntaxError) {
  EXPECT_FALSE(parseProgram("A + ", {{"A", f64({2})}}));
  EXPECT_FALSE(parseProgram("np.bogus(A)", {{"A", f64({2})}}));
  EXPECT_FALSE(parseProgram("A ; B", {{"A", f64({2})}}));
}

TEST(ParserTest, ParsesDecimalConstants) {
  auto R = parseProgram("A * 0.5", {{"A", f64({2})}});
  ASSERT_TRUE(R) << R.Error;
  RNG Rng(3);
  InputBinding Inputs{{"A", randomTensor(Shape({2}), Rng)}};
  Tensor Out = interpretProgram(*R.Prog, Inputs);
  EXPECT_DOUBLE_EQ(Out.at(0), Inputs.at("A").at(0) * 0.5);
}

//===----------------------------------------------------------------------===//
// Printer round-trip
//===----------------------------------------------------------------------===//

namespace {

struct RoundTripCase {
  const char *Name;
  const char *Source;
  InputDecls Decls;
};

class RoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

} // namespace

TEST_P(RoundTripTest, PrintParseAgreesWithOriginal) {
  const RoundTripCase &C = GetParam();
  auto R1 = parseProgram(C.Source, C.Decls);
  ASSERT_TRUE(R1) << R1.Error;
  std::string Printed = printProgram(*R1.Prog);
  auto R2 = parseProgram(Printed, C.Decls);
  ASSERT_TRUE(R2) << "reparse of '" << Printed << "': " << R2.Error;

  // Semantic agreement on random inputs.
  RNG Rng(17);
  InputBinding Inputs;
  for (const auto &[Name, Type] : C.Decls)
    Inputs.emplace(Name, randomTensor(Type.TShape, Rng));
  EXPECT_TRUE(interpretProgram(*R1.Prog, Inputs)
                  .allClose(interpretProgram(*R2.Prog, Inputs)))
      << Printed;
}

static const RoundTripCase RoundTripCases[] = {
    {"diag_dot", "np.diag(np.dot(A, B))",
     {{"A", f64({4, 4})}, {"B", f64({4, 4})}}},
    {"arith", "(A + B) / np.sqrt(A + B)", {{"A", f64({8})}, {"B", f64({8})}}},
    {"power", "np.power(np.sqrt(A) + np.sqrt(A), 2)", {{"A", f64({8})}}},
    {"reduction", "np.sum(A * x, axis=1)",
     {{"A", f64({4, 6})}, {"x", f64({6})}}},
    {"trace", "np.trace(A @ B.T)", {{"A", f64({3, 3})}, {"B", f64({3, 3})}}},
    {"comprehension", "np.stack([x * 2 for x in A], axis=0)",
     {{"A", f64({3, 2})}}},
    {"stack", "np.max(np.stack([A, B]), axis=0)",
     {{"A", f64({5})}, {"B", f64({5})}}},
    {"reshape", "np.reshape(np.dot(np.reshape(A, (2, 3, 1, 4)), B), (2, 3, 5))",
     {{"A", f64({2, 3, 4})}, {"B", f64({4, 5})}}},
    {"where", "np.where(A < B, A, B)", {{"A", f64({4})}, {"B", f64({4})}}},
    {"scalar_mix", "np.sum(a * A, axis=0)",
     {{"a", f64({})}, {"A", f64({3, 4})}}},
};

INSTANTIATE_TEST_SUITE_P(Printer, RoundTripTest,
                         ::testing::ValuesIn(RoundTripCases),
                         [](const ::testing::TestParamInfo<RoundTripCase> &I) {
                           return I.param.Name;
                         });

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

TEST(InterpreterTest, EvaluatesDiagDotIdentity) {
  InputDecls Decls = {{"A", f64({4, 4})}, {"B", f64({4, 4})}};
  auto Orig = parseProgram("np.diag(np.dot(A, B))", Decls);
  auto Opt = parseProgram("np.sum(A * B.T, axis=1)", Decls);
  ASSERT_TRUE(Orig && Opt);
  RNG Rng(23);
  InputBinding Inputs{{"A", randomTensor(Shape({4, 4}), Rng)},
                      {"B", randomTensor(Shape({4, 4}), Rng)}};
  EXPECT_TRUE(interpretProgram(*Orig.Prog, Inputs)
                  .allClose(interpretProgram(*Opt.Prog, Inputs)));
}

TEST(InterpreterTest, ComprehensionMatchesBroadcast) {
  InputDecls Decls = {{"A", f64({5})}, {"x", f64({})}, {"y", f64({})}};
  auto Loop = parseProgram("np.stack([(x*a + (1 - a)*y) for a in A])", Decls);
  auto Vect = parseProgram("x*A + (1 - A)*y", Decls);
  ASSERT_TRUE(Loop && Vect);
  RNG Rng(29);
  InputBinding Inputs{{"A", randomTensor(Shape({5}), Rng)},
                      {"x", Tensor::scalar(Rng.positive())},
                      {"y", Tensor::scalar(Rng.positive())}};
  EXPECT_TRUE(interpretProgram(*Loop.Prog, Inputs)
                  .allClose(interpretProgram(*Vect.Prog, Inputs)));
}

TEST(InterpreterTest, QuadraticForm) {
  InputDecls Decls = {{"x", f64({3})}, {"A", f64({3, 3})}};
  auto R = parseProgram("x.T @ A @ x", Decls);
  ASSERT_TRUE(R) << R.Error;
  Tensor X(Shape({3}), {1, 2, 3});
  Tensor A = Tensor::full(Shape({3, 3}), 1.0);
  InputBinding Inputs{{"x", X}, {"A", A}};
  // sum_i sum_j x_i x_j = (1+2+3)^2 = 36.
  EXPECT_DOUBLE_EQ(interpretProgram(*R.Prog, Inputs).item(), 36.0);
}

//===----------------------------------------------------------------------===//
// FLOP cost model
//===----------------------------------------------------------------------===//

TEST(FlopCostTest, DotCost) {
  Program P;
  const Node *A = P.input("A", f64({8, 8}));
  const Node *B = P.input("B", f64({8, 8}));
  const Node *D = P.dot(A, B);
  EXPECT_DOUBLE_EQ(flopCostOfOp(D), 2.0 * 64 * 8);
}

TEST(FlopCostTest, DataMovementIsCheapButNotFree) {
  Program P;
  const Node *A = P.input("A", f64({8, 8}));
  double TransposeCost = flopCostOfOp(P.transpose(A));
  EXPECT_GT(TransposeCost, 0.0);
  EXPECT_LT(TransposeCost, flopCostOfOp(P.add(A, A)));
}

TEST(FlopCostTest, DiagDotRewriteIsCheaper) {
  InputDecls Decls = {{"A", f64({16, 16})}, {"B", f64({16, 16})}};
  auto Orig = parseProgram("np.diag(np.dot(A, B))", Decls);
  auto Opt = parseProgram("np.sum(A * B.T, axis=1)", Decls);
  ASSERT_TRUE(Orig && Opt);
  // Cubic vs quadratic: the rewrite must be much cheaper.
  EXPECT_GT(flopCost(Orig.Prog->getRoot()),
            4.0 * flopCost(Opt.Prog->getRoot()));
}

TEST(FlopCostTest, ComprehensionChargesPerIteration) {
  InputDecls Decls = {{"A", f64({10})}};
  auto Loop = parseProgram("np.stack([x * 2 for x in A], axis=0)", Decls);
  auto Vect = parseProgram("A * 2", Decls);
  ASSERT_TRUE(Loop && Vect);
  // Both do 10 multiplies in this model (interpreter overhead is the
  // backend's concern), so FLOPs should be equal.
  EXPECT_DOUBLE_EQ(flopCost(Loop.Prog->getRoot()),
                   flopCost(Vect.Prog->getRoot()));
}

//===----------------------------------------------------------------------===//
// Parser robustness (malformed inputs must fail cleanly, never crash)
//===----------------------------------------------------------------------===//

namespace {

class ParserRejectionTest : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(ParserRejectionTest, MalformedSourceIsRejected) {
  InputDecls Decls = {{"A", f64({3, 3})}, {"B", f64({3, 3})},
                      {"x", f64({3})}};
  auto R = parseProgram(GetParam(), Decls);
  EXPECT_FALSE(R) << "accepted: " << GetParam();
  EXPECT_FALSE(R.Error.empty());
}

static const char *RejectionCases[] = {
    "",                                  // empty
    "np.dot(A)",                         // arity
    "np.dot(A, B",                       // unbalanced
    "np.sum(A, axis=)",                  // missing axis value
    "np.sum(A, axis=x)",                 // non-integer axis
    "np.transpose(A, (0, 0))",           // invalid permutation
    "np.reshape(A, (2, 2))",             // element-count mismatch
    "np.stack([A, x])",                  // shape mismatch in stack
    "np.stack([a * 2 for in A])",        // missing loop variable
    "np.stack([y * 2 for y in 3])",      // iterating a scalar
    "A @ np.sum(x)",                     // dot with a scalar
    "np.where(A, A, B)",                 // non-bool condition
    "A ** B ** ",                        // dangling power
    "np.triu(x)",                        // triu needs rank 2
    "A..T",                              // bad attribute
    "np.full((3, 3))",                   // missing fill value
    "$A + B",                            // bad character
    "np.tensordot(A, B, axes=([1], [0, 1]))", // axis arity mismatch
};

INSTANTIATE_TEST_SUITE_P(Malformed, ParserRejectionTest,
                         ::testing::ValuesIn(RejectionCases));

TEST(ParserTest, RejectsOverflowingLiterals) {
  // A literal beyond int64 must fail cleanly (no exception, no crash).
  InputDecls Decls = {{"A", f64({2})}};
  auto R = parseProgram("A + 99999999999999999999999999", Decls);
  EXPECT_FALSE(R);
  EXPECT_NE(R.Error.find("out of range"), std::string::npos) << R.Error;
  auto R2 = parseProgram("A * 0.12345678901234567890123", Decls);
  EXPECT_FALSE(R2);
}

//===----------------------------------------------------------------------===//
// Program factory edge cases
//===----------------------------------------------------------------------===//

TEST(ProgramDeathTest, MakeAbortsWithDiagnosticOnTypeError) {
  Program P;
  const Node *A = P.input("A", f64({2, 3}));
  const Node *B = P.input("B", f64({4}));
  EXPECT_DEATH(P.make(OpKind::Add, {A, B}), "type error building np.add");
}

TEST(ProgramDeathTest, InputRedeclarationAborts) {
  Program P;
  P.input("A", f64({2}));
  EXPECT_DEATH(P.input("A", f64({3})), "redeclared");
}

TEST(ProgramTest, ComprehensionFactoryRejectsBadShapes) {
  Program P;
  const Node *A = P.input("A", f64({4, 3}));
  // Wrong loop-variable type: slice of A is (3,), not scalar.
  const Node *BadVar = P.loopVar("v", f64({}));
  const Node *Body = P.add(BadVar, P.constant(Rational(1)));
  EXPECT_EQ(P.tryMakeComprehension(A, BadVar, Body), nullptr);

  // Correct variable type works.
  const Node *Var = P.loopVar("w", f64({3}));
  const Node *Body2 = P.add(Var, Var);
  EXPECT_NE(P.tryMakeComprehension(A, Var, Body2), nullptr);
}

TEST(ProgramTest, CloneIntoMergesInputsByName) {
  Program P;
  const Node *A = P.input("A", f64({2}));
  P.setRoot(P.add(A, A));
  Program Q;
  Q.input("A", f64({2})); // pre-declared; clone must reuse it
  const Node *Root = Program::cloneInto(Q, P.getRoot());
  Q.setRoot(Root);
  EXPECT_EQ(Q.getInputs().size(), 1u);
}
