//===- EvalSuiteTest.cpp - Tests for the evaluation suite -----------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "evalsuite/Classifier.h"
#include "evalsuite/Harness.h"
#include "evalsuite/RewriteRuleMiner.h"

#include "dsl/Interpreter.h"

#include <gtest/gtest.h>

#include <set>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::evalsuite;

//===----------------------------------------------------------------------===//
// Suite integrity
//===----------------------------------------------------------------------===//

TEST(BenchmarkSuiteTest, HasThirtyThreeBenchmarks) {
  const auto &Suite = benchmarkSuite();
  EXPECT_EQ(Suite.size(), 33u);
  size_t Github = 0, Synthetic = 0;
  for (const BenchmarkDef &Def : Suite)
    (Def.Synthetic ? Synthetic : Github) += 1;
  EXPECT_EQ(Github, 21u);   // Table I
  EXPECT_EQ(Synthetic, 12u); // Table II
}

TEST(BenchmarkSuiteTest, NamesAreUniqueAndFindable) {
  std::set<std::string> Names;
  for (const BenchmarkDef &Def : benchmarkSuite()) {
    EXPECT_TRUE(Names.insert(Def.Name).second) << Def.Name;
    EXPECT_EQ(findBenchmark(Def.Name), &Def);
  }
  EXPECT_EQ(findBenchmark("no_such_benchmark"), nullptr);
}

TEST(BenchmarkSuiteTest, ClassCountsMatchPaperFigure6) {
  // Fig. 6: Algebraic Simplification 9, Strength Reduction 8.
  std::map<TransformClass, int> Counts;
  for (const BenchmarkDef &Def : benchmarkSuite())
    ++Counts[Def.Class];
  EXPECT_EQ(Counts[TransformClass::AlgebraicSimplification], 9);
  EXPECT_EQ(Counts[TransformClass::StrengthReduction], 8);
  EXPECT_EQ(Counts[TransformClass::IdentityReplacement], 7);
  EXPECT_EQ(Counts[TransformClass::RedundancyElimination], 7);
  EXPECT_EQ(Counts[TransformClass::Vectorization], 2);
}

/// Every benchmark must parse at both shape configurations and agree
/// between them structurally (same root op kind).
TEST(BenchmarkSuiteTest, AllBenchmarksParseAtBothShapeConfigs) {
  for (const BenchmarkDef &Def : benchmarkSuite()) {
    auto Full = parseProgram(Def.sourceFor(true), Def.declsFor(true));
    auto Reduced = parseProgram(Def.sourceFor(false), Def.declsFor(false));
    ASSERT_TRUE(Full) << Def.Name << ": " << Full.Error;
    ASSERT_TRUE(Reduced) << Def.Name << ": " << Reduced.Error;
    EXPECT_EQ(Full.Prog->getRoot()->getKind(),
              Reduced.Prog->getRoot()->getKind())
        << Def.Name;
  }
}

TEST(BenchmarkSuiteTest, ScalersAreConsistent) {
  for (const BenchmarkDef &Def : benchmarkSuite()) {
    synth::ShapeScaler Scaler = Def.scaler();
    for (const auto &Dim : Def.Dims)
      EXPECT_EQ(Scaler.scaleExtent(Dim.Reduced), Dim.Full) << Def.Name;
  }
}

TEST(BenchmarkSuiteTest, ReducedShapesAreSmall) {
  for (const BenchmarkDef &Def : benchmarkSuite())
    for (const auto &[Name, Type] : Def.declsFor(false))
      EXPECT_LE(Type.TShape.getNumElements(), 64) << Def.Name << "/" << Name;
}

//===----------------------------------------------------------------------===//
// Classifier
//===----------------------------------------------------------------------===//

namespace {

TransformClass classifyPair(const std::string &Orig, const std::string &Opt,
                            const InputDecls &Decls) {
  auto A = parseProgram(Orig, Decls);
  auto B = parseProgram(Opt, Decls);
  EXPECT_TRUE(A && B);
  return classifyTransformation(A.Prog->getRoot(), B.Prog->getRoot());
}

TensorType vec(int64_t N) { return TensorType{DType::Float64, Shape({N})}; }

} // namespace

TEST(ClassifierTest, DetectsVectorization) {
  EXPECT_EQ(classifyPair("np.stack([x * 2 for x in A], axis=0)", "A * 2",
                         {{"A", {DType::Float64, Shape({4, 3})}}}),
            TransformClass::Vectorization);
}

TEST(ClassifierTest, DetectsRedundancyElimination) {
  EXPECT_EQ(classifyPair("np.transpose(np.transpose(A))", "A",
                         {{"A", {DType::Float64, Shape({3, 4})}}}),
            TransformClass::RedundancyElimination);
}

TEST(ClassifierTest, DetectsIdentityReplacement) {
  EXPECT_EQ(classifyPair("np.diag(np.dot(A, B))",
                         "np.sum(A * B.T, axis=1)",
                         {{"A", {DType::Float64, Shape({3, 3})}},
                          {"B", {DType::Float64, Shape({3, 3})}}}),
            TransformClass::IdentityReplacement);
}

TEST(ClassifierTest, DetectsStrengthReduction) {
  EXPECT_EQ(classifyPair("np.power(A, 2)", "A * A", {{"A", vec(4)}}),
            TransformClass::StrengthReduction);
}

TEST(ClassifierTest, DefaultsToAlgebraicSimplification) {
  EXPECT_EQ(classifyPair("A * B + C * B", "(A + C) * B",
                         {{"A", vec(4)}, {"B", vec(4)}, {"C", vec(4)}}),
            TransformClass::AlgebraicSimplification);
}

//===----------------------------------------------------------------------===//
// Rewrite rule miner
//===----------------------------------------------------------------------===//

TEST(RuleMinerTest, GeneralizesDiagDotRule) {
  InputDecls Decls = {{"A", {DType::Float64, Shape({3, 3})}},
                      {"B", {DType::Float64, Shape({3, 3})}}};
  auto Orig = parseProgram("np.diag(np.dot(A, B))", Decls);
  auto Opt = parseProgram("np.sum(A * B.T, axis=1)", Decls);
  ASSERT_TRUE(Orig && Opt);
  RewriteRule Rule =
      mineRewriteRule(Orig.Prog->getRoot(), Opt.Prog->getRoot());
  EXPECT_EQ(Rule.Lhs, "np.diag(np.dot(X, Y))");
  EXPECT_EQ(Rule.Rhs, "np.sum(X * Y.T, axis=1)");
}

TEST(RuleMinerTest, NamesFollowFirstAppearance) {
  InputDecls Decls = {{"p", vec(4)}, {"q", vec(4)}};
  auto Orig = parseProgram("q * p + q", Decls);
  auto Opt = parseProgram("q * (p + 1)", Decls);
  ASSERT_TRUE(Orig && Opt);
  RewriteRule Rule =
      mineRewriteRule(Orig.Prog->getRoot(), Opt.Prog->getRoot());
  // q appears first => X; p => Y.
  EXPECT_EQ(Rule.Lhs, "X * Y + X");
  EXPECT_EQ(Rule.Rhs, "X * (Y + 1)");
}

//===----------------------------------------------------------------------===//
// End-to-end harness on a representative subset
//===----------------------------------------------------------------------===//

namespace {

class HarnessTest : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(HarnessTest, SynthesizesVerifiesAndSpeedsUp) {
  const BenchmarkDef *Def = findBenchmark(GetParam());
  ASSERT_NE(Def, nullptr);
  BenchmarkRun Run = synthesizeBenchmark(*Def, evaluationConfig(45));
  EXPECT_FALSE(Run.Synthesis.TimedOut) << Def->Name;
  // Equivalence is checked internally (aborts on mismatch).
  verifyRunEquivalence(Run);
  EXPECT_TRUE(Run.Synthesis.Improved) << Def->Name;

  // On the eager backend, the optimized program must actually be faster.
  backend::BackendConfig NumPy;
  SpeedupResult Speedup = measureSpeedup(Run, NumPy, /*Reps=*/3);
  EXPECT_GT(Speedup.speedup(), 1.1) << Def->Name << ": "
                                    << Run.Synthesis.OptimizedSource;
}

INSTANTIATE_TEST_SUITE_P(RepresentativeBenchmarks, HarnessTest,
                         ::testing::Values("diag_dot", "log_exp_1",
                                           "elem_square", "vec_lerp",
                                           "trace_dot", "synth_3",
                                           "synth_12", "sum_stack"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

TEST(HarnessTest2, TimeoutEnvOverride) {
  setenv("STENSO_TIMEOUT", "123.5", 1);
  EXPECT_DOUBLE_EQ(suiteTimeoutSeconds(30), 123.5);
  setenv("STENSO_TIMEOUT", "garbage", 1);
  EXPECT_DOUBLE_EQ(suiteTimeoutSeconds(30), 30);
  unsetenv("STENSO_TIMEOUT");
  EXPECT_DOUBLE_EQ(suiteTimeoutSeconds(45), 45);
}
