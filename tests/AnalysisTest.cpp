//===- AnalysisTest.cpp - Abstract-interpretation analysis layer ----------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the static-analysis layer (src/analysis/):
///
///   * the lattice domains' transfer functions, brute-forced against
///     concrete arithmetic on representative values;
///   * directed sign/degree/support verdicts over symbolic expressions
///     and over DSL ASTs, including the hole-symbol poisoning and the
///     shape edge cases (zero-size tensors, broadcasts, booleans);
///   * a >= 500-program soundness fuzz of the abstract interpreter and
///     the expression analyzer against the reference interpreter /
///     symbolic evaluator on random positive inputs;
///   * the pruning oracle checked differentially against the hole
///     solver: every (sketch, spec) pair the oracle rejects must be a
///     pair the solver fails on;
///   * end-to-end determinism: synthesis returns the identical result
///     with analysis pruning on or off, sequentially and in parallel;
///   * the lint pass (expected checks fire with spans; clean programs
///     stay clean) and the parser's span/line-column bookkeeping.
///
//===----------------------------------------------------------------------===//

#include "analysis/AbstractInterpreter.h"
#include "analysis/CostBound.h"
#include "analysis/ExprSign.h"
#include "analysis/Lint.h"
#include "analysis/PruningOracle.h"
#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "support/RNG.h"
#include "symbolic/Evaluator.h"
#include "symbolic/ExprContext.h"
#include "symexec/SymbolicExecutor.h"
#include "synth/HoleSolver.h"
#include "synth/SketchLibrary.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace stenso;
using namespace stenso::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Sign domain: transfer functions vs concrete arithmetic
//===----------------------------------------------------------------------===//

/// Concrete representatives of each sign bit.
std::vector<double> representatives(SignSet S) {
  std::vector<double> Out;
  if (S.canBeNeg()) {
    Out.push_back(-2.5);
    Out.push_back(-1);
  }
  if (S.canBeZero())
    Out.push_back(0);
  if (S.canBePos()) {
    Out.push_back(0.5);
    Out.push_back(3);
  }
  return Out;
}

/// All seven non-empty sign sets.
std::vector<SignSet> allSignSets() {
  std::vector<SignSet> Out;
  for (uint8_t Bits = 1; Bits <= SignSet::AllBits; ++Bits)
    Out.push_back(SignSet(Bits));
  return Out;
}

TEST(SignSetTest, BinaryTransferFunctionsCoverConcreteArithmetic) {
  for (SignSet A : allSignSets())
    for (SignSet B : allSignSets())
      for (double X : representatives(A))
        for (double Y : representatives(B)) {
          EXPECT_TRUE(SignSet::addSign(A, B).contains(SignSet::ofDouble(X + Y)))
              << A.toString() << " + " << B.toString() << " at " << X << ","
              << Y;
          EXPECT_TRUE(SignSet::mulSign(A, B).contains(SignSet::ofDouble(X * Y)))
              << A.toString() << " * " << B.toString() << " at " << X << ","
              << Y;
          EXPECT_TRUE(SignSet::maxSign(A, B).contains(
              SignSet::ofDouble(std::max(X, Y))))
              << "max(" << A.toString() << ", " << B.toString() << ")";
          EXPECT_TRUE(SignSet::lessSign(A, B).contains(
              SignSet::ofDouble(X < Y ? 1.0 : 0.0)))
              << A.toString() << " < " << B.toString() << " at " << X << ","
              << Y;
        }
}

TEST(SignSetTest, NegateAndSumFoldCoverConcreteArithmetic) {
  for (SignSet A : allSignSets()) {
    for (double X : representatives(A))
      EXPECT_TRUE(SignSet::negate(A).contains(SignSet::ofDouble(-X)));
    // Sums of Count representatives, exhaustively for small counts.
    for (int64_t Count : {0, 1, 2, 3}) {
      SignSet Folded = SignSet::sumFold(A, Count);
      std::vector<double> Reps = representatives(A);
      std::vector<size_t> Pick(static_cast<size_t>(Count), 0);
      bool Done = Count == 0;
      auto CheckSum = [&] {
        double Sum = 0;
        for (size_t I : Pick)
          Sum += Reps[I];
        EXPECT_TRUE(Folded.contains(SignSet::ofDouble(Sum)))
            << "sum of " << Count << " from " << A.toString() << " = " << Sum;
      };
      if (Count == 0) {
        EXPECT_TRUE(Folded.contains(SignSet::zero())) << "empty sum";
      }
      while (!Done) {
        CheckSum();
        size_t I = 0;
        for (; I < Pick.size(); ++I) {
          if (++Pick[I] < Reps.size())
            break;
          Pick[I] = 0;
        }
        Done = I == Pick.size();
      }
    }
  }
}

TEST(SignSetTest, SelectSignRefinesOnDecidedConditions) {
  SignSet T = SignSet::pos(), F = SignSet::neg();
  // Condition can never be zero: always the true branch.
  EXPECT_EQ(SignSet::selectSign(SignSet::pos(), T, F), T);
  // Condition is exactly zero: always the false branch.
  EXPECT_EQ(SignSet::selectSign(SignSet::zero(), T, F), F);
  // Undecided: the join.
  EXPECT_EQ(SignSet::selectSign(SignSet::nonNeg(), T, F), T.joinWith(F));
}

TEST(SignSetTest, LatticeBasics) {
  EXPECT_TRUE(SignSet::pos().subsetOf(SignSet::nonNeg()));
  EXPECT_FALSE(SignSet::nonNeg().subsetOf(SignSet::pos()));
  EXPECT_TRUE(SignSet::disjoint(SignSet::pos(), SignSet::nonPos()));
  EXPECT_FALSE(SignSet::disjoint(SignSet::nonNeg(), SignSet::nonPos()));
  EXPECT_EQ(SignSet::ofConstant(Rational(-3, 7)), SignSet::neg());
  EXPECT_EQ(SignSet::ofConstant(Rational(0)), SignSet::zero());
  EXPECT_TRUE(SignSet::top().isTop());
}

//===----------------------------------------------------------------------===//
// Degree domain
//===----------------------------------------------------------------------===//

TEST(DegreeRangeTest, TransferFunctions) {
  DegreeRange C = DegreeRange::constant();
  DegreeRange X = DegreeRange::symbol();
  DegreeRange X2 = DegreeRange::mulDeg(X, X);
  EXPECT_EQ(X2.Lo, 2);
  EXPECT_EQ(X2.Hi, 2);
  // Sums can cancel to any lower degree: Lo collapses.
  DegreeRange S = DegreeRange::addDeg(X2, X);
  EXPECT_EQ(S.Lo, 0);
  EXPECT_EQ(S.Hi, 2);
  EXPECT_EQ(DegreeRange::powDeg(X, 3).Hi, 3);
  EXPECT_TRUE(DegreeRange::powDeg(X, -1).NonPoly);
  EXPECT_TRUE(DegreeRange::mulDeg(X, DegreeRange::nonPoly()).NonPoly);
  EXPECT_TRUE(DegreeRange::disjoint(C, X));
  EXPECT_TRUE(DegreeRange::disjoint(X, X2));
  EXPECT_FALSE(DegreeRange::disjoint(S, X));
  EXPECT_FALSE(DegreeRange::disjoint(X, DegreeRange::nonPoly()));
  // The clamp keeps pathological powers finite.
  DegreeRange Huge = DegreeRange::powDeg(X, int64_t(1) << 40);
  EXPECT_EQ(Huge.Hi, DegreeRange::MaxDegree);
}

//===----------------------------------------------------------------------===//
// Interval domain: transfer functions vs concrete arithmetic
//===----------------------------------------------------------------------===//

/// Representative intervals spanning the shapes the analysis produces:
/// points, closed and open finite ranges, half-lines, and top.
std::vector<Interval> representativeIntervals() {
  double Inf = std::numeric_limits<double>::infinity();
  return {Interval::top(),
          Interval::point(0),
          Interval::point(2),
          Interval::point(-1.5),
          Interval::closed(-1, 1),
          Interval::closed(0, 3),
          Interval::closed(-3, -0.5),
          Interval::above(0, /*Open=*/true),
          Interval::above(1, /*Open=*/false),
          Interval(0, true, 1, true),
          Interval(-Inf, false, 2, false)};
}

/// Concrete members of \p I drawn from a fixed pool.  Membership is
/// decided by the interval itself, so open endpoints need no epsilon
/// gymnastics, and the pool values are exactly representable.
std::vector<double> samplesIn(const Interval &I) {
  static const double Pool[] = {-3, -2.5, -1, -0.5, 0, 0.25, 0.5, 1, 2, 3.5};
  std::vector<double> Out;
  for (double V : Pool)
    if (I.contains(V))
      Out.push_back(V);
  return Out;
}

TEST(IntervalTest, BinaryTransferFunctionsCoverConcreteArithmetic) {
  for (const Interval &A : representativeIntervals())
    for (const Interval &B : representativeIntervals())
      for (double X : samplesIn(A))
        for (double Y : samplesIn(B)) {
          EXPECT_TRUE(Interval::add(A, B).contains(X + Y))
              << A.toString() << " + " << B.toString() << " at " << X << ","
              << Y;
          EXPECT_TRUE(Interval::sub(A, B).contains(X - Y))
              << A.toString() << " - " << B.toString() << " at " << X << ","
              << Y;
          EXPECT_TRUE(Interval::mul(A, B).contains(X * Y))
              << A.toString() << " * " << B.toString() << " at " << X << ","
              << Y;
          EXPECT_TRUE(Interval::minOf(A, B).contains(std::min(X, Y)))
              << "min(" << A.toString() << ", " << B.toString() << ")";
          EXPECT_TRUE(Interval::maxOf(A, B).contains(std::max(X, Y)))
              << "max(" << A.toString() << ", " << B.toString() << ")";
          // Quotients: non-finite results are the Suspect bit's business
          // (the contract only covers finite values).
          double Q = X / Y;
          if (std::isfinite(Q)) {
            EXPECT_TRUE(Interval::div(A, B).contains(Q))
                << A.toString() << " / " << B.toString() << " at " << X << ","
                << Y;
          }
          Interval J = Interval::join(A, B);
          EXPECT_TRUE(J.contains(X) && J.contains(Y))
              << "join(" << A.toString() << ", " << B.toString() << ")";
        }
}

TEST(IntervalTest, UnaryTransferFunctionsCoverConcreteArithmetic) {
  for (const Interval &A : representativeIntervals()) {
    std::vector<double> Xs = samplesIn(A);
    for (double X : Xs) {
      EXPECT_TRUE(Interval::negate(A).contains(-X)) << A.toString();
      EXPECT_TRUE(Interval::expOf(A).contains(std::exp(X))) << A.toString();
      if (X >= 0) {
        EXPECT_TRUE(Interval::sqrtOf(A).contains(std::sqrt(X)))
            << A.toString() << " at " << X;
        EXPECT_TRUE(Interval::powReal(A, 0.5).contains(std::pow(X, 0.5)))
            << A.toString() << " at " << X;
      }
      if (X > 0) {
        EXPECT_TRUE(Interval::logOf(A).contains(std::log(X)))
            << A.toString() << " at " << X;
      }
      for (int64_t K : {0, 1, 2, 3})
        EXPECT_TRUE(Interval::powInt(A, K).contains(std::pow(X, K)))
            << A.toString() << " ** " << K << " at " << X;
      if (X != 0) {
        EXPECT_TRUE(Interval::powInt(A, -1).contains(1.0 / X))
            << A.toString() << " at " << X;
      }
      EXPECT_TRUE(Interval::sumFold(A, 1).contains(X)) << A.toString();
    }
    // Small sums: the empty sum is exactly zero; two-element sums take
    // any pair of members.
    EXPECT_TRUE(Interval::sumFold(A, 0).contains(0)) << A.toString();
    for (double X : Xs)
      for (double Y : Xs)
        EXPECT_TRUE(Interval::sumFold(A, 2).contains(X + Y))
            << A.toString() << " at " << X << "+" << Y;
  }
}

TEST(IntervalTest, QueriesAndSelectMirrorTheSignDomain) {
  // provablyPositive demands the open or strictly-positive lower end;
  // provablyNonNegative accepts a closed zero.
  EXPECT_TRUE(Interval::above(0, true).provablyPositive());
  EXPECT_FALSE(Interval::above(0, false).provablyPositive());
  EXPECT_TRUE(Interval::above(0, false).provablyNonNegative());
  EXPECT_TRUE(Interval::closed(1, 2).excludesZero());
  EXPECT_FALSE(Interval::closed(-1, 1).excludesZero());
  EXPECT_TRUE(Interval::point(0).contains(0));
  EXPECT_TRUE(Interval::top().isTop());
  EXPECT_FALSE(Interval::closed(0, 3).isTop());
  EXPECT_FALSE(Interval::point(2).toString().empty());

  // The queries agree with membership on every representative.
  for (const Interval &A : representativeIntervals()) {
    EXPECT_EQ(A.excludesZero(), !A.contains(0)) << A.toString();
    for (double X : samplesIn(A)) {
      if (A.provablyPositive()) {
        EXPECT_GT(X, 0) << A.toString();
      }
      if (A.provablyNonNegative()) {
        EXPECT_GE(X, 0) << A.toString();
      }
    }
  }

  // select mirrors selectSign: a decided condition picks one branch, an
  // undecided one joins.
  Interval T = Interval::closed(1, 2), F = Interval::closed(-2, -1);
  EXPECT_TRUE(Interval::select(SignSet::pos(), T, F).contains(1.5));
  EXPECT_FALSE(Interval::select(SignSet::pos(), T, F).contains(-1.5));
  EXPECT_TRUE(Interval::select(SignSet::zero(), T, F).contains(-1.5));
  EXPECT_FALSE(Interval::select(SignSet::zero(), T, F).contains(1.5));
  Interval Both = Interval::select(SignSet::nonNeg(), T, F);
  EXPECT_TRUE(Both.contains(1.5) && Both.contains(-1.5));
}

//===----------------------------------------------------------------------===//
// ExprAnalyzer: directed verdicts over symbolic expressions
//===----------------------------------------------------------------------===//

TEST(ExprAnalyzerTest, DirectedSignAndDegreeVerdicts) {
  sym::ExprContext Ctx;
  ExprAnalyzer An;
  const sym::Expr *X = Ctx.symbol("x");
  const sym::Expr *Y = Ctx.symbol("y");

  // Input symbols are strictly positive, degree 1.
  EXPECT_EQ(An.analyze(X).Sign, SignSet::pos());
  EXPECT_EQ(An.analyze(X).Degree, DegreeRange::symbol());
  EXPECT_FALSE(An.analyze(X).Suspect);

  // Sums and products of positives stay positive.
  EXPECT_EQ(An.analyze(Ctx.add(X, Y)).Sign, SignSet::pos());
  const ExprAbstract &Prod = An.analyze(Ctx.mul(X, Y));
  EXPECT_EQ(Prod.Sign, SignSet::pos());
  EXPECT_EQ(Prod.Degree.Lo, 2);
  EXPECT_EQ(Prod.Degree.Hi, 2);

  // Differences of positives can have any sign.
  EXPECT_TRUE(An.analyze(Ctx.sub(X, Y)).Sign.isTop());

  // exp is positive and never a polynomial.
  const ExprAbstract &E = An.analyze(Ctx.expOf(X));
  EXPECT_EQ(E.Sign, SignSet::pos());
  EXPECT_TRUE(E.Degree.NonPoly);

  // log of a positive symbol is defined but can take any sign; log of
  // constants away from 1 has a known sign.
  const ExprAbstract &L = An.analyze(Ctx.logOf(X));
  EXPECT_FALSE(L.Suspect);
  EXPECT_TRUE(L.Sign.isTop());
  EXPECT_EQ(An.analyze(Ctx.logOf(Ctx.integer(2))).Sign, SignSet::pos());
  EXPECT_EQ(An.analyze(Ctx.logOf(Ctx.constant(Rational(1, 2)))).Sign,
            SignSet::neg());

  // sqrt / reciprocals of positives stay positive.
  EXPECT_EQ(An.analyze(Ctx.sqrt(X)).Sign, SignSet::pos());
  EXPECT_EQ(An.analyze(Ctx.div(Ctx.one(), X)).Sign, SignSet::pos());

  // log of a possibly-nonpositive value is suspect: published top.
  const ExprAbstract &Bad = An.analyze(Ctx.logOf(Ctx.sub(X, Y)));
  EXPECT_TRUE(Bad.Suspect);
  EXPECT_TRUE(Bad.Sign.isTop());
  EXPECT_TRUE(Bad.Degree.NonPoly);

  // Suspicion is sticky: anything containing the bad log is top too.
  const ExprAbstract &Wrapped =
      An.analyze(Ctx.mul(X, Ctx.logOf(Ctx.sub(X, Y))));
  EXPECT_TRUE(Wrapped.Sign.isTop());
}

TEST(ExprAnalyzerTest, HoleSymbolsPoisonEveryEnclosingExpression) {
  sym::ExprContext Ctx;
  const sym::Expr *X = Ctx.symbol("x");
  const sym::Expr *H = Ctx.symbol("__hole0");
  ExprAnalyzer An({H});

  // The hole itself: no claims whatsoever.
  EXPECT_TRUE(An.analyze(H).Sign.isTop());
  EXPECT_TRUE(An.analyze(H).Degree.NonPoly);
  EXPECT_TRUE(An.analyze(H).Suspect);

  // The solver can substitute arbitrary expressions (including exp(...)
  // inverses), so even sign-preserving contexts must stay top.
  EXPECT_TRUE(An.analyze(Ctx.mul(X, H)).Sign.isTop());
  EXPECT_TRUE(An.analyze(Ctx.expOf(H)).Sign.isTop());
  EXPECT_TRUE(An.analyze(Ctx.add(X, H)).Sign.isTop());

  // A hole-free sibling analyzed by the same instance keeps its verdict.
  EXPECT_EQ(An.analyze(Ctx.mul(X, X)).Sign, SignSet::pos());
}

//===----------------------------------------------------------------------===//
// AbstractInterpreter: directed verdicts over DSL ASTs
//===----------------------------------------------------------------------===//

TEST(AbstractInterpreterTest, SignSupportAndLinearity) {
  dsl::Program P;
  dsl::TensorType Vec{DType::Float64, Shape({5})};
  dsl::TensorType Mat{DType::Float64, Shape({4, 5})};
  const dsl::Node *A = P.input("A", Vec);
  const dsl::Node *B = P.input("B", Vec);
  const dsl::Node *M = P.input("M", Mat);

  AbstractInterpreter AI(P);

  // Inputs: strictly positive, degree-1 in themselves only.
  EXPECT_EQ(AI.analyze(A).Sign, SignSet::pos());
  EXPECT_TRUE(AI.analyze(A).linearIn("A"));
  EXPECT_EQ(AI.analyze(A).Support, std::set<std::string>{"A"});

  // Sums of positives are positive; differences are not.
  EXPECT_EQ(AI.analyze(P.add(A, B)).Sign, SignSet::pos());
  EXPECT_TRUE(AI.analyze(P.subtract(A, B)).Sign.isTop());
  EXPECT_FALSE(AI.analyze(P.subtract(A, B)).Suspect);

  // dot(M, A) is bilinear: linear in each input, support both.
  const AbstractValue &Dot = AI.analyze(P.dot(M, A));
  EXPECT_EQ(Dot.Sign, SignSet::pos());
  EXPECT_TRUE(Dot.linearIn("M"));
  EXPECT_TRUE(Dot.linearIn("A"));
  EXPECT_EQ(Dot.Support, (std::set<std::string>{"A", "M"}));

  // A*A is quadratic in A, so not linear.
  const AbstractValue &Sq = AI.analyze(P.multiply(A, A));
  EXPECT_FALSE(Sq.linearIn("A"));
  EXPECT_EQ(Sq.degreeIn("A").Hi, 2);
  EXPECT_EQ(Sq.degreeIn("B").Hi, 0); // uninvolved input: degree 0

  // Division by a provably positive denominator is safe...
  const AbstractValue &SafeDiv = AI.analyze(P.divide(A, P.add(A, B)));
  EXPECT_FALSE(SafeDiv.Suspect);
  EXPECT_EQ(SafeDiv.Sign, SignSet::pos());
  // ... but by a difference it is suspect, which collapses the sign.
  const AbstractValue &BadDiv = AI.analyze(P.divide(A, P.subtract(A, B)));
  EXPECT_TRUE(BadDiv.Suspect);
  EXPECT_TRUE(BadDiv.Sign.isTop());

  // sqrt of a possibly-negative value is suspect; of a positive, not.
  EXPECT_TRUE(AI.analyze(P.sqrtOp(P.subtract(A, B))).Suspect);
  EXPECT_FALSE(AI.analyze(P.sqrtOp(P.add(A, B))).Suspect);
}

TEST(AbstractInterpreterTest, BooleansSelectionsAndShapeEdgeCases) {
  dsl::Program P;
  dsl::TensorType Vec{DType::Float64, Shape({5})};
  const dsl::Node *A = P.input("A", Vec);
  const dsl::Node *B = P.input("B", Vec);
  AbstractInterpreter AI(P);

  // A comparison of two positives is an undecided 0/1 indicator.
  const dsl::Node *Lt = P.make(dsl::OpKind::Less, {A, B});
  ASSERT_NE(Lt, nullptr);
  EXPECT_EQ(Lt->getType().Dtype, DType::Bool);
  EXPECT_EQ(AI.analyze(Lt).Sign, SignSet::nonNeg());

  // where() over two positive branches is positive either way.
  const dsl::Node *Sel = P.make(dsl::OpKind::Where, {Lt, A, B});
  EXPECT_EQ(AI.analyze(Sel).Sign, SignSet::pos());

  // Masking introduces exact zeros: triu of a positive matrix.
  dsl::TensorType Mat{DType::Float64, Shape({4, 4})};
  const dsl::Node *M = P.input("M", Mat);
  const dsl::Node *Tri = P.make(dsl::OpKind::Triu, {M});
  ASSERT_NE(Tri, nullptr);
  EXPECT_EQ(AI.analyze(Tri).Sign, SignSet::nonNeg());

  // Broadcast: vector + scalar stays elementwise positive.
  dsl::TensorType Scal{DType::Float64, Shape()};
  const dsl::Node *S = P.input("s", Scal);
  EXPECT_EQ(AI.analyze(P.add(A, S)).Sign, SignSet::pos());

  // Zero-size tensor: the full reduction is the empty sum, exactly zero.
  dsl::TensorType Empty{DType::Float64, Shape({0})};
  const dsl::Node *Z = P.input("Z", Empty);
  const dsl::Node *Sum = P.tryMake(dsl::OpKind::SumAll, {Z});
  ASSERT_NE(Sum, nullptr);
  EXPECT_EQ(AI.analyze(Sum).Sign, SignSet::zero());
}

//===----------------------------------------------------------------------===//
// Soundness fuzz: abstract claims vs the reference interpreter
//===----------------------------------------------------------------------===//

/// Seed discipline (DESIGN.md §12): STENSO_SEED offsets every derived
/// shard seed below; failing tests announce the value to export for an
/// exact rerun.
uint64_t baseSeed() { return seedFromEnv(0); }

/// Random well-typed program generator, extended relative to
/// PropertyTest's with the domain-sensitive operations the analysis
/// exists for (exp, log, where/less, maximum, power by 1/2).
class AnalysisFuzzer {
public:
  /// \p SquareShapes switches the signature to a square matrix (4x4) and
  /// matching vector, which makes the triu/tril/diag sketch families
  /// reachable in the oracle differential test.
  explicit AnalysisFuzzer(uint64_t Seed, bool SquareShapes = false)
      : Rng(Seed), Square(SquareShapes) {}

  std::unique_ptr<dsl::Program> generate(int MaxOps) {
    auto P = std::make_unique<dsl::Program>();
    dsl::TensorType Vec{DType::Float64, Shape({Square ? 4 : 5})};
    dsl::TensorType Mat{DType::Float64,
                        Square ? Shape({4, 4}) : Shape({4, 5})};
    dsl::TensorType Scal{DType::Float64, Shape()};
    std::vector<const dsl::Node *> Pool = {
        P->input("A", Vec), P->input("B", Vec), P->input("M", Mat),
        P->input("s", Scal), P->constant(Rational(2)),
        P->constant(Rational(1, 2))};
    for (int Step = 0; Step < MaxOps; ++Step)
      if (const dsl::Node *Made = randomOp(*P, Pool))
        Pool.push_back(Made);
    for (auto It = Pool.rbegin(); It != Pool.rend(); ++It)
      if (!(*It)->isInput() && !(*It)->isConstant()) {
        P->setRoot(*It);
        return P;
      }
    P->setRoot(P->add(Pool[0], Pool[1]));
    return P;
  }

  RNG &rng() { return Rng; }

private:
  const dsl::Node *pick(const std::vector<const dsl::Node *> &Pool) {
    return Pool[static_cast<size_t>(
        Rng.uniformInt(0, static_cast<int64_t>(Pool.size()) - 1))];
  }

  const dsl::Node *randomOp(dsl::Program &P,
                            const std::vector<const dsl::Node *> &Pool) {
    using dsl::OpKind;
    switch (Rng.uniformInt(0, 13)) {
    case 0:
      return P.tryMake(OpKind::Add, {pick(Pool), pick(Pool)});
    case 1:
      return P.tryMake(OpKind::Subtract, {pick(Pool), pick(Pool)});
    case 2:
      return P.tryMake(OpKind::Multiply, {pick(Pool), pick(Pool)});
    case 3:
      return P.tryMake(OpKind::Divide, {pick(Pool), pick(Pool)});
    case 4:
      return P.tryMake(OpKind::Sqrt, {pick(Pool)});
    case 5:
      return P.tryMake(OpKind::Maximum, {pick(Pool), pick(Pool)});
    case 6:
      return P.tryMake(OpKind::Dot, {pick(Pool), pick(Pool)});
    case 7: {
      const dsl::Node *Operand = pick(Pool);
      if (Operand->getType().TShape.getRank() == 0)
        return nullptr;
      dsl::NodeAttrs Attrs;
      Attrs.Axis = Rng.uniformInt(0, Operand->getType().TShape.getRank() - 1);
      return P.tryMake(OpKind::Sum, {Operand}, Attrs);
    }
    case 8:
      return P.tryMake(OpKind::Transpose, {pick(Pool)});
    case 9:
      return P.tryMake(OpKind::Exp, {pick(Pool)});
    case 10:
      return P.tryMake(OpKind::Log, {pick(Pool)});
    case 11: {
      const dsl::Node *C = P.tryMake(OpKind::Less, {pick(Pool), pick(Pool)});
      if (!C)
        return nullptr;
      return P.tryMake(OpKind::Where, {C, pick(Pool), pick(Pool)});
    }
    case 12:
      return P.tryMake(OpKind::Power,
                       {pick(Pool), P.constant(Rational(1, 2))});
    default:
      return P.tryMake(OpKind::Power, {pick(Pool), P.constant(Rational(2))});
    }
  }

  RNG Rng;
  bool Square = false;
};

dsl::InputBinding randomInputsFor(const dsl::Program &P, RNG &Rng) {
  dsl::InputBinding Inputs;
  for (const dsl::Node *In : P.getInputs()) {
    Tensor T(In->getType().TShape);
    for (int64_t I = 0; I < T.getNumElements(); ++I)
      T.at(I) = Rng.positive();
    Inputs.emplace(In->getName(), std::move(T));
  }
  return Inputs;
}

/// One fuzz round: checks every abstract claim about \p P against a
/// concrete evaluation.  Counts in \p Checked how many non-top claims
/// were actually exercised (so the suite can assert non-vacuity).
void checkSoundnessOnce(const dsl::Program &P, RNG &Rng, int64_t &Checked) {
  AbstractInterpreter AI(P);
  const AbstractValue &V = AI.analyze(P.getRoot());

  dsl::InputBinding Inputs = randomInputsFor(P, Rng);
  Tensor Got = dsl::interpretProgram(P, Inputs);

  // Claim 1 (sign): when not suspect, every finite element's sign is in
  // the set.  (Overflow to inf/NaN is a float artifact outside the
  // real-arithmetic contract; sign claims still hold for +/-inf.)
  if (!V.Suspect) {
    for (int64_t I = 0; I < Got.getNumElements(); ++I) {
      double X = Got.at(I);
      if (std::isnan(X))
        continue;
      SignSet Observed = std::isinf(X)
                             ? (X > 0 ? SignSet::pos() : SignSet::neg())
                             : SignSet::ofDouble(X);
      EXPECT_TRUE(V.Sign.contains(Observed))
          << dsl::printProgram(P) << " element " << I << " = " << X
          << " outside " << V.Sign.toString();
      ++Checked;
    }
  }

  // Claim 1b (interval): when not suspect, every finite element lies in
  // the published range.  The interval's proofs are over exact reals
  // (AbstractDomains.h), so IEEE rounding may graze an endpoint; a
  // relative tolerance absorbs that without masking real unsoundness.
  if (!V.Suspect && !V.Range.isTop()) {
    for (int64_t I = 0; I < Got.getNumElements(); ++I) {
      double X = Got.at(I);
      if (!std::isfinite(X))
        continue;
      double Tol = 1e-9 * std::max(1.0, std::abs(X));
      EXPECT_TRUE(V.Range.contains(X) || V.Range.contains(X - Tol) ||
                  V.Range.contains(X + Tol))
          << dsl::printProgram(P) << " element " << I << " = " << X
          << " outside " << V.Range.toString();
      ++Checked;
    }
  }

  // Claim 2 (support): re-randomizing inputs outside the support set
  // cannot change the result.
  bool HasDeadInput = false;
  for (const dsl::Node *In : P.getInputs())
    if (!V.Support.count(In->getName()))
      HasDeadInput = true;
  if (HasDeadInput && Got.allClose(Got)) {
    dsl::InputBinding Mutated;
    for (const dsl::Node *In : P.getInputs()) {
      if (V.Support.count(In->getName())) {
        Mutated.emplace(In->getName(), Inputs.at(In->getName()));
        continue;
      }
      Tensor T(In->getType().TShape);
      for (int64_t I = 0; I < T.getNumElements(); ++I)
        T.at(I) = Rng.positive();
      Mutated.emplace(In->getName(), std::move(T));
    }
    Tensor Again = dsl::interpretProgram(P, Mutated);
    EXPECT_TRUE(Got.allClose(Again, 0, 0))
        << dsl::printProgram(P) << ": dead input changed the result";
    ++Checked;
  }

  // Claim 3 (symbolic side): the ExprAnalyzer verdict on each spec
  // element contains the sign of its concrete evaluation.
  sym::ExprContext Ctx;
  symexec::SymTensor Spec = symexec::computeSpec(P, Ctx);
  sym::Environment Env;
  for (const sym::Expr *E : Spec.getElements())
    for (const sym::SymbolExpr *S : sym::collectSymbols(E)) {
      const Tensor &T = Inputs.at(S->getTensorName());
      int64_t Flat = S->getIndices().empty()
                         ? 0
                         : T.getShape().linearize(S->getIndices());
      Env.emplace(S, T.at(Flat));
    }
  ExprAnalyzer An;
  for (int64_t I = 0; I < Spec.getNumElements(); ++I) {
    const ExprAbstract &EV = An.analyze(Spec.at(I));
    if (EV.Sign.isTop())
      continue;
    double X = sym::evaluate(Spec.at(I), Env);
    if (std::isnan(X))
      continue;
    SignSet Observed = std::isinf(X)
                           ? (X > 0 ? SignSet::pos() : SignSet::neg())
                           : SignSet::ofDouble(X);
    EXPECT_TRUE(EV.Sign.contains(Observed))
        << dsl::printProgram(P) << " spec element " << I << " = " << X
        << " outside " << EV.Sign.toString();
    ++Checked;
  }
}

class AnalysisFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AnalysisFuzzTest, AbstractClaimsHoldOnRandomPrograms) {
  // 10 shards x >= 52 programs each = 520 random well-typed programs.
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  int64_t Checked = 0;
  for (int Round = 0; Round < 52; ++Round) {
    uint64_t Seed = baseSeed() +
        static_cast<uint64_t>(GetParam()) * 1000003 + Round * 97 + 11;
    AnalysisFuzzer Fuzzer(Seed);
    std::unique_ptr<dsl::Program> P = Fuzzer.generate(6);
    checkSoundnessOnce(*P, Fuzzer.rng(), Checked);
  }
  // The fuzz must actually exercise non-top claims, not skip everything.
  EXPECT_GT(Checked, 50);
}

INSTANTIATE_TEST_SUITE_P(Shards, AnalysisFuzzTest, ::testing::Range(0, 10));

//===----------------------------------------------------------------------===//
// Pruning oracle vs the hole solver: no unsound rejections
//===----------------------------------------------------------------------===//

TEST(PruningOracleTest, TypeReachabilityCoversExactlyQueryableTypes) {
  dsl::Program P;
  dsl::TensorType Vec{DType::Float64, Shape({5})};
  dsl::TensorType Mat{DType::Float64, Shape({4, 5})};
  const dsl::Node *A = P.input("A", Vec);
  const dsl::Node *M = P.input("M", Mat);
  P.setRoot(P.dot(M, A)); // root type f64[4]

  TypeReachability Reach = TypeReachability::forProgram(P);
  EXPECT_TRUE(Reach.mayMatch({DType::Float64, Shape({4})}));   // root
  EXPECT_TRUE(Reach.mayMatch({DType::Float64, Shape({5})}));   // input
  EXPECT_TRUE(Reach.mayMatch({DType::Float64, Shape({4, 5})})); // input
  EXPECT_TRUE(Reach.mayMatch({DType::Float64, Shape()}));       // scalar
  EXPECT_FALSE(Reach.mayMatch({DType::Float64, Shape({7})}));
  EXPECT_FALSE(Reach.mayMatch({DType::Float64, Shape({5, 4})}));
  EXPECT_FALSE(Reach.mayMatch({DType::Bool, Shape({5})}));
}

TEST(PruningOracleTest, EveryOracleRejectionIsASolverFailure) {
  // Library over the fuzzer's input signature, then a stream of query
  // specs (the seed program's own spec plus random fuzz-program specs
  // over the same inputs): whenever the oracle rejects a (sketch, spec)
  // pair, the solver must fail on it — an unsound prune shows up here as
  // a successful solve of a rejected pair.
  AnalysisFuzzer Seed(424243, /*SquareShapes=*/true);
  std::unique_ptr<dsl::Program> P = Seed.generate(5);

  sym::ExprContext Ctx;
  symexec::SymBinding Bindings = symexec::makeInputBindings(*P, Ctx);
  std::unique_ptr<synth::CostModel> Model = synth::makeCostModel("flops");
  synth::SketchLibrary::Config LibCfg;
  LibCfg.AnalysisPruning = true;
  synth::SketchLibrary Library(*P, Ctx, Bindings, *Model,
                               synth::ShapeScaler(), LibCfg);
  ASSERT_GT(Library.getSketches().size(), 0u);

  synth::HoleSolver Solver(Ctx, Bindings);
  ExprAnalyzer SpecAnalyzer;
  int64_t Rejected = 0, Pairs = 0;

  auto CheckSpec = [&](const symexec::SymTensor &Spec) {
    TensorAbstract SpecSig = computeTensorAbstract(Spec, SpecAnalyzer);
    for (const synth::Sketch *Sk :
         Library.getSketchesFor(Spec.getShape(), Spec.getDType())) {
      PruneDomain D = oracleRejects(Sk->Signature, SpecSig);
      ++Pairs;
      if (D == PruneDomain::None)
        continue;
      ++Rejected;
      Expected<symexec::SymTensor> Solved = Solver.solve(*Sk, Spec);
      EXPECT_FALSE(Solved.hasValue())
          << "oracle (" << toString(D) << ") rejected a solvable pair: "
          << "sketch " << Sk->Index << " vs spec of "
          << dsl::printProgram(*P);
    }
  };

  CheckSpec(symexec::computeSpec(*P, Ctx));
  // Handcrafted positive specs of every reachable shape: these meet the
  // masking sketches (triu/tril/diag templates carry exact-zero
  // elements), which guarantees the rejection path is exercised.
  {
    dsl::Program Q;
    dsl::TensorType Mat{DType::Float64, Shape({4, 4})};
    const dsl::Node *M = Q.input("M", Mat);
    Q.setRoot(Q.add(M, M));
    CheckSpec(symexec::computeSpec(Q, Ctx));
  }
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  for (int Round = 0; Round < 40; ++Round) {
    AnalysisFuzzer Fuzzer(baseSeed() + 90001 + Round * 13,
                          /*SquareShapes=*/true);
    std::unique_ptr<dsl::Program> Q = Fuzzer.generate(5);
    symexec::SymTensor Spec = symexec::computeSpec(*Q, Ctx);
    if (Library.getSketchesFor(Spec.getShape(), Spec.getDType()).empty())
      continue;
    CheckSpec(Spec);
  }

  // Non-vacuity: the stream must have produced both rejections and
  // pass-throughs.
  EXPECT_GT(Rejected, 0) << Pairs << " pairs tested";
  EXPECT_GT(Pairs, Rejected);
}

//===----------------------------------------------------------------------===//
// End-to-end determinism: the oracle never changes the search outcome
//===----------------------------------------------------------------------===//

TEST(AnalysisPruningTest, SynthesisResultIdenticalWithOracleOnOrOff) {
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  for (int SeedIdx = 0; SeedIdx < 3; ++SeedIdx) {
    AnalysisFuzzer Fuzzer(baseSeed() + static_cast<uint64_t>(SeedIdx) * 7741 +
                          5);
    std::unique_ptr<dsl::Program> P = Fuzzer.generate(4);

    struct Outcome {
      bool Improved;
      std::string Source;
      double Cost;
      synth::AbortReason Abort;
    };
    std::vector<Outcome> Outcomes;
    int64_t PrunedOn = -1, PrunedOff = -1;
    for (bool Oracle : {true, false})
      for (int Jobs : {1, 2}) {
        synth::SynthesisConfig Config;
        Config.TimeoutSeconds = 60;
        Config.UseAnalysisPruning = Oracle;
        Config.Jobs = Jobs;
        synth::SynthesisResult R = synth::Synthesizer(Config).run(*P);
        Outcomes.push_back(
            {R.Improved, R.OptimizedSource, R.OptimizedCost, R.Abort});
        if (Oracle)
          PrunedOn = R.Stats.PrunedByAnalysis;
        else
          PrunedOff = R.Stats.PrunedByAnalysis;
        if (R.Abort == synth::AbortReason::Timeout)
          GTEST_SKIP() << "timeout; determinism only promised on "
                          "completed searches";
      }
    for (size_t I = 1; I < Outcomes.size(); ++I) {
      EXPECT_EQ(Outcomes[0].Improved, Outcomes[I].Improved)
          << dsl::printProgram(*P);
      EXPECT_EQ(Outcomes[0].Source, Outcomes[I].Source)
          << dsl::printProgram(*P);
      EXPECT_EQ(Outcomes[0].Cost, Outcomes[I].Cost) << dsl::printProgram(*P);
      EXPECT_EQ(Outcomes[0].Abort, Outcomes[I].Abort)
          << dsl::printProgram(*P);
    }
    // Stats bookkeeping: the oracle-off runs must report zero analysis
    // prunes (the counters are tied to the flag, not merely unused).
    EXPECT_EQ(PrunedOff, 0);
    EXPECT_GE(PrunedOn, 0);
  }
}

//===----------------------------------------------------------------------===//
// Cost-bound analysis: admissibility and search-outcome preservation
//===----------------------------------------------------------------------===//

TEST(CostBoundTest, BoundsAreAdmissibleOnEnumeratedCompletions) {
  // DESIGN.md section 14's contract, checked against the enumerated
  // library: no bound may exceed the true (flops-additive) cost of any
  // completion the search could build from it.
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  for (int SeedIdx = 0; SeedIdx < 4; ++SeedIdx) {
    uint64_t Seed = baseSeed() + static_cast<uint64_t>(SeedIdx) * 7919 + 3;
    AnalysisFuzzer Fuzzer(Seed, /*SquareShapes=*/SeedIdx % 2 == 1);
    std::unique_ptr<dsl::Program> P = Fuzzer.generate(5);

    sym::ExprContext Ctx;
    symexec::SymBinding Bindings = symexec::makeInputBindings(*P, Ctx);
    std::unique_ptr<synth::CostModel> Model = synth::makeCostModel("flops");
    synth::ShapeScaler Scaler;
    synth::SketchLibrary Library(*P, Ctx, Bindings, *Model, Scaler,
                                 synth::SketchLibrary::Config());
    ASSERT_GT(Library.getStubs().size(), 0u);

    const int MaxDepth = 4;
    CostBoundAnalysis CB =
        synth::buildCostBound(Library, *Model, Scaler, Bindings, MaxDepth);

    // Spec floor: every complete fragment is a program with that spec,
    // so the floor of its spec cannot exceed its cost...
    for (const synth::Stub &S : Library.getStubs())
      EXPECT_LE(CB.specLowerBound(S.Spec), S.Cost)
          << dsl::printProgram(*P) << " stub of cost " << S.Cost;
    // ... and the fuzz program itself is a completion of its own spec.
    symexec::SymTensor Spec = symexec::computeSpec(*P, Ctx);
    EXPECT_LE(CB.specLowerBound(Spec),
              Model->costOfTree(P->getRoot(), Scaler))
        << dsl::printProgram(*P);

    // Depth-0 completions are exactly the stubs.
    for (const synth::Stub &S : Library.getStubs())
      EXPECT_LE(CB.holeCompletionBound(S.Root->getType(), 0), S.Cost)
          << dsl::printProgram(*P);

    // Obligation floor: every stub is a completion whose spec supplies
    // exactly the tensors it mentions, so demanding that full set (with
    // an empty concrete part) can never exceed the stub's cost.  The
    // floor is monotone in the missing set, so this dominates every
    // subset a real sketch would leave missing.
    auto specTensors = [](const symexec::SymTensor &Spec) {
      std::unordered_set<std::string> Names;
      for (const sym::Expr *E : Spec.getElements())
        for (const sym::SymbolExpr *S : sym::collectSymbols(E))
          Names.insert(S->getTensorName().empty() ? S->getName()
                                                  : S->getTensorName());
      return Names;
    };
    for (const synth::Stub &S : Library.getStubs())
      EXPECT_LE(CB.holeObligationFloor(S.Root->getType(),
                                       specTensors(S.Spec), {}),
                S.Cost)
          << dsl::printProgram(*P) << " stub of cost " << S.Cost;

    // The hole floor must be monotone nonincreasing in the remaining
    // depth: everything reachable at depth d is reachable at d+1.
    for (const synth::Stub &S : Library.getStubs())
      for (int D = 0; D < MaxDepth; ++D)
        EXPECT_LE(CB.holeCompletionBound(S.Root->getType(), D + 1),
                  CB.holeCompletionBound(S.Root->getType(), D));
    for (const synth::Sketch &Sk : Library.getSketches()) {
      dsl::TensorType T{Sk.Template.getDType(), Sk.Template.getShape()};
      for (int D = 0; D < MaxDepth; ++D)
        EXPECT_LE(CB.holeCompletionBound(T, D + 1),
                  CB.holeCompletionBound(T, D));
    }

    // Random sketch chains ending in a stub are the deep completions the
    // DFS builds.  The flops model is additive per node and a sketch's
    // hole is a zero-cost input, so the composed tree's cost is the sum
    // of the concrete costs plus the stub's; the floor at every depth
    // that can reach the chain must stay below that.
    RNG Rng(Seed ^ 0x9e3779b97f4a7c15ull);
    const std::vector<synth::Stub> &Stubs = Library.getStubs();
    const std::vector<synth::Sketch> &Sketches = Library.getSketches();
    for (int Walk = 0; Walk < 32; ++Walk) {
      const synth::Stub &S = Stubs[static_cast<size_t>(Rng.uniformInt(
          0, static_cast<int64_t>(Stubs.size()) - 1))];
      dsl::TensorType CurType = S.Root->getType();
      double Total = S.Cost;
      int Len = 0;
      for (int D = Len; D <= MaxDepth; ++D)
        EXPECT_LE(CB.holeCompletionBound(CurType, D), Total);
      while (Len < MaxDepth) {
        std::vector<const synth::Sketch *> Fits;
        for (const synth::Sketch &Sk : Sketches)
          if (Sk.HoleType == CurType)
            Fits.push_back(&Sk);
        if (Fits.empty())
          break;
        const synth::Sketch &Sk = *Fits[static_cast<size_t>(Rng.uniformInt(
            0, static_cast<int64_t>(Fits.size()) - 1))];
        Total += Sk.ConcreteCost;
        CurType = {Sk.Template.getDType(), Sk.Template.getShape()};
        ++Len;
        for (int D = Len; D <= MaxDepth; ++D)
          EXPECT_LE(CB.holeCompletionBound(CurType, D), Total)
              << dsl::printProgram(*P) << " chain of length " << Len;
      }
    }
  }
}

TEST(CostBoundPruningTest, SearchOutcomeIdenticalWithBoundOnOrOff) {
  // The bound is admissible, so branch-and-bound may only skip work,
  // never change the winner: jobs={1,4} x bound on/off must return the
  // bit-identical (Improved, Source, Cost, Abort) quadruple.
  SCOPED_TRACE("STENSO_SEED=" + std::to_string(baseSeed()));
  for (int SeedIdx = 0; SeedIdx < 3; ++SeedIdx) {
    AnalysisFuzzer Fuzzer(baseSeed() + static_cast<uint64_t>(SeedIdx) * 6151 +
                          17);
    std::unique_ptr<dsl::Program> P = Fuzzer.generate(4);

    struct Outcome {
      bool Improved;
      std::string Source;
      double Cost;
      synth::AbortReason Abort;
    };
    std::vector<Outcome> Outcomes;
    int64_t PrunedOnSeq = -1, PrunedOff = 0;
    for (bool Bound : {true, false})
      for (int Jobs : {1, 4}) {
        synth::SynthesisConfig Config;
        Config.TimeoutSeconds = 60;
        Config.UseCostBoundPruning = Bound;
        Config.Jobs = Jobs;
        synth::SynthesisResult R = synth::Synthesizer(Config).run(*P);
        Outcomes.push_back(
            {R.Improved, R.OptimizedSource, R.OptimizedCost, R.Abort});
        if (Bound && Jobs == 1)
          PrunedOnSeq = R.Stats.PrunedByCostBound;
        if (!Bound)
          PrunedOff += R.Stats.PrunedByCostBound;
        if (R.Abort == synth::AbortReason::Timeout)
          GTEST_SKIP() << "timeout; determinism only promised on "
                          "completed searches";
      }
    for (size_t I = 1; I < Outcomes.size(); ++I) {
      EXPECT_EQ(Outcomes[0].Improved, Outcomes[I].Improved)
          << dsl::printProgram(*P);
      EXPECT_EQ(Outcomes[0].Source, Outcomes[I].Source)
          << dsl::printProgram(*P);
      EXPECT_EQ(Outcomes[0].Cost, Outcomes[I].Cost) << dsl::printProgram(*P);
      EXPECT_EQ(Outcomes[0].Abort, Outcomes[I].Abort)
          << dsl::printProgram(*P);
    }
    // The counter is tied to the flag: off-runs must report zero prunes.
    EXPECT_EQ(PrunedOff, 0);
    EXPECT_GE(PrunedOnSeq, 0);
  }
}

//===----------------------------------------------------------------------===//
// Lint: expected checks fire, with spans; clean programs stay clean
//===----------------------------------------------------------------------===//

namespace {

std::vector<LintDiagnostic> lintSource(const std::string &Source,
                                       dsl::ParseResult *Out = nullptr) {
  dsl::InputDecls Decls = {{"A", {DType::Float64, Shape({5})}},
                           {"B", {DType::Float64, Shape({5})}}};
  dsl::ParseResult R = dsl::parseProgram(Source, Decls);
  EXPECT_TRUE(R) << Source << ": " << R.Error;
  if (!R)
    return {};
  std::vector<LintDiagnostic> Diags = lintProgram(*R.Prog);
  if (Out)
    *Out = std::move(R);
  return Diags;
}

bool hasCheck(const std::vector<LintDiagnostic> &Diags,
              const std::string &Check) {
  for (const LintDiagnostic &D : Diags)
    if (D.Check == Check)
      return true;
  return false;
}

} // namespace

TEST(LintTest, DomainChecksFireWithValidSpans) {
  struct Case {
    const char *Source;
    const char *Check;
  };
  const Case Cases[] = {
      {"A / (A - B)", "division-by-possibly-zero"},
      {"np.log(A - B)", "log-domain"},
      {"np.sqrt(A - B)", "sqrt-of-possibly-negative"},
      {"(A - B) ** 0.5", "pow-domain"},
  };
  for (const Case &C : Cases) {
    std::vector<LintDiagnostic> Diags = lintSource(C.Source);
    EXPECT_TRUE(hasCheck(Diags, C.Check)) << C.Source;
    for (const LintDiagnostic &D : Diags) {
      EXPECT_TRUE(D.Span.valid()) << C.Source << " check " << D.Check;
      EXPECT_LE(D.Span.End, static_cast<int64_t>(std::string(C.Source).size()))
          << C.Source;
    }
  }
}

TEST(LintTest, DeadInputAndConstantResultChecks) {
  // B is declared but unused.
  EXPECT_TRUE(hasCheck(lintSource("A + A"), "dead-input"));
  // A result depending on no input at all.
  EXPECT_TRUE(hasCheck(lintSource("2 + 2"), "constant-result"));
  // A clean program yields no warnings at all.
  for (const LintDiagnostic &D : lintSource("np.dot(A, B)"))
    EXPECT_NE(D.Severity, LintSeverity::Warning)
        << D.Check << ": " << D.Message;
}

TEST(LintTest, RenderedDiagnosticsCarryCaretAndLocation) {
  dsl::ParseResult Parsed;
  std::vector<LintDiagnostic> Diags = lintSource("A / (A - B)", &Parsed);
  ASSERT_FALSE(Diags.empty());
  std::string Rendered = renderDiagnostic("A / (A - B)", Diags.front());
  EXPECT_NE(Rendered.find("warning:"), std::string::npos) << Rendered;
  EXPECT_NE(Rendered.find('^'), std::string::npos) << Rendered;
  EXPECT_NE(Rendered.find("1:"), std::string::npos) << Rendered;

  std::string Json = diagnosticsToJson("A / (A - B)", Diags);
  EXPECT_NE(Json.find("\"span\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"check\""), std::string::npos) << Json;
}

TEST(LintTest, SeverityNames) {
  EXPECT_STREQ(toString(LintSeverity::Note), "note");
  EXPECT_STREQ(toString(LintSeverity::Warning), "warning");
  EXPECT_STREQ(toString(LintSeverity::Error), "error");
}

//===----------------------------------------------------------------------===//
// Parser spans and error positions
//===----------------------------------------------------------------------===//

TEST(ParserSpanTest, NodesCarrySpansIntoTheSource) {
  dsl::InputDecls Decls = {{"A", {DType::Float64, Shape({5})}},
                           {"B", {DType::Float64, Shape({5})}}};
  std::string Source = "np.sqrt(A + B) / np.exp(B)";
  dsl::ParseResult R = dsl::parseProgram(Source, Decls);
  ASSERT_TRUE(R) << R.Error;

  // The root (the division) spans the whole expression.
  dsl::SourceSpan Root = R.Prog->getSpan(R.Prog->getRoot());
  ASSERT_TRUE(Root.valid());
  EXPECT_EQ(Root.Begin, 0);
  EXPECT_EQ(Root.End, static_cast<int64_t>(Source.size()));

  // Operand spans nest inside the root and cover their own text.
  const dsl::Node *Sqrt = R.Prog->getRoot()->getOperand(0);
  dsl::SourceSpan S = R.Prog->getSpan(Sqrt);
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(Source.substr(static_cast<size_t>(S.Begin),
                          static_cast<size_t>(S.End - S.Begin)),
            "np.sqrt(A + B)");
}

TEST(ParserSpanTest, ErrorsCarryOffsetAndLineColumn) {
  dsl::InputDecls Decls = {{"A", {DType::Float64, Shape({5})}}};
  const char *Cases[] = {"np.dot(A,", "A +", "np.bogus(A)", "A @ @"};
  for (const char *Source : Cases) {
    dsl::ParseResult R = dsl::parseProgram(Source, Decls);
    ASSERT_FALSE(R) << Source;
    EXPECT_FALSE(R.Error.empty());
    ASSERT_NE(R.ErrorOffset, std::string::npos) << Source;
    EXPECT_LE(R.ErrorOffset, std::string(Source).size());
    EXPECT_GE(R.ErrorLine, 1);
    EXPECT_GE(R.ErrorCol, 1);
    // The line/column must agree with lineColAt on the same offset.
    auto LC = dsl::lineColAt(Source, R.ErrorOffset);
    EXPECT_EQ(LC.first, R.ErrorLine) << Source;
    EXPECT_EQ(LC.second, R.ErrorCol) << Source;
  }
}

TEST(ParserSpanTest, MultiLineSourcesReportLaterLines) {
  dsl::InputDecls Decls = {{"A", {DType::Float64, Shape({5})}}};
  std::string Source = "(A +\n A +\n np.frobnicate(A))";
  dsl::ParseResult R = dsl::parseProgram(Source, Decls);
  ASSERT_FALSE(R);
  EXPECT_EQ(R.ErrorLine, 3) << R.Error;
}

} // namespace
