//===- SynthTest.cpp - Tests for the STENSO synthesizer core --------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/BottomUpSynthesizer.h"
#include "synth/Synthesizer.h"

#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::synth;

static TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

static InputBinding randomInputs(const InputDecls &Decls, RNG &Rng) {
  InputBinding Inputs;
  for (const auto &[Name, Type] : Decls) {
    Tensor T(Type.TShape, Type.Dtype);
    for (int64_t I = 0; I < T.getNumElements(); ++I)
      T.at(I) = Type.Dtype == DType::Bool ? (Rng.chance(0.5) ? 1.0 : 0.0)
                                          : Rng.positive();
    Inputs.emplace(Name, std::move(T));
  }
  return Inputs;
}

/// Runs STENSO on \p Source and checks the result is equivalent to the
/// original on random inputs; returns the result for further checks.
static SynthesisResult synthesizeAndVerify(const std::string &Source,
                                           const InputDecls &Decls,
                                           SynthesisConfig Config = {},
                                           const ShapeScaler &Scaler = {}) {
  auto Parsed = parseProgram(Source, Decls);
  EXPECT_TRUE(Parsed) << Source << ": " << Parsed.Error;
  if (Config.TimeoutSeconds == SynthesisConfig().TimeoutSeconds)
    Config.TimeoutSeconds = 60;
  Synthesizer Synth(Config);
  SynthesisResult Result = Synth.run(*Parsed.Prog, Scaler);
  EXPECT_FALSE(Result.TimedOut) << Source;

  if (Result.Improved) {
    EXPECT_TRUE(Result.Optimized != nullptr);
    if (!Result.Optimized)
      return Result;
    RNG Rng(1234);
    for (int Trial = 0; Trial < 4; ++Trial) {
      InputBinding Inputs = randomInputs(Decls, Rng);
      Tensor Original = interpretProgram(*Parsed.Prog, Inputs);
      Tensor Optimized = interpretProgram(*Result.Optimized, Inputs);
      EXPECT_TRUE(Original.allClose(Optimized, 1e-7, 1e-9))
          << Source << " vs " << Result.OptimizedSource;
    }
    EXPECT_LT(Result.OptimizedCost, Result.OriginalCost) << Source;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Direct stub matches (Algorithm 2 base case)
//===----------------------------------------------------------------------===//

TEST(SynthesizerTest, PowerTwoBecomesMultiply) {
  // elem_square: np.power(A, 2) -> A * A (strength reduction).
  SynthesisResult R = synthesizeAndVerify("np.power(A, 2)", {{"A", f64({4})}});
  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.OptimizedSource, "A * A");
}

TEST(SynthesizerTest, DoubleTransposeBecomesIdentity) {
  // dot_trans_2: np.transpose(np.transpose(A)) -> A.
  SynthesisResult R = synthesizeAndVerify(
      "np.transpose(np.transpose(A))", {{"A", f64({3, 4})}});
  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.OptimizedSource, "A");
}

TEST(SynthesizerTest, LogExpIsEliminated) {
  // log_exp_1: np.exp(np.log(A + B)) -> A + B.
  SynthesisResult R = synthesizeAndVerify(
      "np.exp(np.log(A + B))", {{"A", f64({4})}, {"B", f64({4})}});
  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.OptimizedSource, "A + B");
}

TEST(SynthesizerTest, LogDifferenceBecomesDivision) {
  // log_exp_2: np.exp(np.log(A) - np.log(B)) -> A / B.
  SynthesisResult R = synthesizeAndVerify(
      "np.exp(np.log(A) - np.log(B))", {{"A", f64({4})}, {"B", f64({4})}});
  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.OptimizedSource, "A / B");
}

TEST(SynthesizerTest, MatVecSumBecomesDot) {
  // mat_vec_prod: np.sum(A * x, axis=1) -> np.dot(A, x).  The two forms
  // are FLOP-equivalent; only the measured cost model can rank the fused
  // contraction above multiply + temporary + reduce (paper Section VI-C),
  // and it must do so at the workload's real sizes, mapped through the
  // scaler from the reduced search shapes.
  SynthesisConfig Config;
  Config.CostModelName = "measured";
  ShapeScaler Scaler;
  Scaler.addMapping(3, 192);
  Scaler.addMapping(4, 256);
  SynthesisResult R = synthesizeAndVerify(
      "np.sum(A * x, axis=1)", {{"A", f64({3, 4})}, {"x", f64({4})}},
      Config, Scaler);
  EXPECT_TRUE(R.Improved);
  // Either contraction spelling qualifies (np.dot(A, x) or the
  // tensordot equivalent) — the point is fusing multiply + reduce.
  bool IsContraction =
      R.OptimizedSource == "np.dot(A, x)" ||
      R.OptimizedSource.find("np.tensordot") != std::string::npos;
  EXPECT_TRUE(IsContraction) << R.OptimizedSource;
  EXPECT_EQ(R.OptimizedSource.find("np.sum"), std::string::npos)
      << R.OptimizedSource;
}

TEST(SynthesizerTest, SqrtQuotientSimplifies) {
  // synth_3: (A + B) / np.sqrt(A + B) -> np.sqrt(A + B).
  SynthesisResult R = synthesizeAndVerify(
      "(A + B) / np.sqrt(A + B)", {{"A", f64({4})}, {"B", f64({4})}});
  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.OptimizedSource, "np.sqrt(A + B)");
}

//===----------------------------------------------------------------------===//
// Recursive sketch decomposition
//===----------------------------------------------------------------------===//

TEST(SynthesizerTest, DiagDotIdentityReplacement) {
  // diag_dot: np.diag(np.dot(A, B)) -> np.sum(A * B.T, axis=1).
  SynthesisResult R = synthesizeAndVerify(
      "np.diag(np.dot(A, B))", {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  EXPECT_TRUE(R.Improved);
  // The exact surface form may vary; it must avoid the full matmul.
  EXPECT_EQ(R.OptimizedSource.find("np.dot"), std::string::npos)
      << R.OptimizedSource;
  EXPECT_EQ(R.OptimizedSource.find("np.diag"), std::string::npos)
      << R.OptimizedSource;
}

TEST(SynthesizerTest, ScaleDotReordering) {
  // scale_dot: np.dot(a * A, B) -> a * np.dot(A, B).
  SynthesisResult R = synthesizeAndVerify(
      "np.dot(a * A, B)",
      {{"a", f64({})}, {"A", f64({3, 4})}, {"B", f64({4})}});
  EXPECT_TRUE(R.Improved);
  EXPECT_NE(R.OptimizedSource.find("np.dot(A, B)"), std::string::npos)
      << R.OptimizedSource;
}

TEST(SynthesizerTest, TraceOfProductBecomesSumOfHadamard) {
  // trace_dot: np.trace(A @ B.T) -> np.sum(A * B).
  SynthesisResult R = synthesizeAndVerify(
      "np.trace(A @ B.T)", {{"A", f64({3, 3})}, {"B", f64({3, 3})}});
  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.OptimizedSource.find("np.trace"), std::string::npos)
      << R.OptimizedSource;
}

TEST(SynthesizerTest, CommonFactorExtraction) {
  // common_factor: A * B + C * B -> (A + C) * B.
  SynthesisResult R = synthesizeAndVerify(
      "A * B + C * B",
      {{"A", f64({4})}, {"B", f64({4})}, {"C", f64({4})}});
  EXPECT_TRUE(R.Improved);
}

TEST(SynthesizerTest, ConstantFoldingAcrossTerms) {
  // synth_1: (A * B) + 3 * (A * B) -> 4 * (A * B) (modulo constant form).
  SynthesisResult R = synthesizeAndVerify(
      "(A * B) + 3 * (A * B)", {{"A", f64({4})}, {"B", f64({4})}});
  EXPECT_TRUE(R.Improved);
}

TEST(SynthesizerTest, RepeatedAdditionBecomesScaling) {
  // synth_12: A + A + A + A + A -> 5 * A (modulo constant form).
  SynthesisResult R = synthesizeAndVerify(
      "A + A + A + A + A", {{"A", f64({6})}});
  EXPECT_TRUE(R.Improved);
}

TEST(SynthesizerTest, QuadraticFormReassociation) {
  // reorder_dot: x.T @ A @ x evaluates two matvecs instead of vec-mat-vec
  // in the wrong order; any equivalent cheaper form qualifies.
  SynthesisResult R = synthesizeAndVerify(
      "np.dot(np.dot(x, A), x)", {{"x", f64({3})}, {"A", f64({3, 3})}});
  // Cost parity is possible at these shapes; only require correctness.
  SUCCEED() << R.OptimizedSource;
}

TEST(SynthesizerTest, VectorizesComprehension) {
  // synth_10: np.stack([x * 2 for x in A]) -> A * 2 under the measured
  // cost model (FLOP-count is blind to loop overhead).
  SynthesisConfig Config;
  Config.CostModelName = "measured";
  SynthesisResult R = synthesizeAndVerify(
      "np.stack([x * 2 for x in A], axis=0)", {{"A", f64({4, 3})}}, Config);
  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.OptimizedSource.find("for"), std::string::npos)
      << R.OptimizedSource;
}

//===----------------------------------------------------------------------===//
// Search behaviour
//===----------------------------------------------------------------------===//

TEST(SynthesizerTest, ReturnsOriginalWhenNothingBetter) {
  // A single add is already optimal.
  auto Parsed = parseProgram("A + B", {{"A", f64({4})}, {"B", f64({4})}});
  ASSERT_TRUE(Parsed);
  Synthesizer Synth;
  SynthesisResult R = Synth.run(*Parsed.Prog);
  EXPECT_FALSE(R.Improved);
  EXPECT_EQ(R.OptimizedSource, "A + B");
  EXPECT_DOUBLE_EQ(R.OptimizedCost, R.OriginalCost);
}

TEST(SynthesizerTest, BranchAndBoundMatchesUnprunedQuality) {
  // Paper Section VII-B: branch-and-bound does not degrade solution
  // quality, only synthesis time.
  InputDecls Decls = {{"A", f64({3, 3})}, {"B", f64({3, 3})}};
  std::string Source = "np.diag(np.dot(A, B))";
  auto Parsed = parseProgram(Source, Decls);
  ASSERT_TRUE(Parsed);

  SynthesisConfig WithBnB;
  WithBnB.TimeoutSeconds = 60;
  SynthesisConfig Without = WithBnB;
  Without.UseBranchAndBound = false;

  SynthesisResult R1 = Synthesizer(WithBnB).run(*Parsed.Prog);
  SynthesisResult R2 = Synthesizer(Without).run(*Parsed.Prog);
  ASSERT_TRUE(R1.Improved);
  ASSERT_TRUE(R2.Improved);
  EXPECT_DOUBLE_EQ(R1.OptimizedCost, R2.OptimizedCost);
  // And pruning must actually have fired.
  EXPECT_GT(R1.Stats.PrunedByCost, 0);
}

TEST(SynthesizerTest, StatsArePopulated) {
  SynthesisResult R = synthesizeAndVerify(
      "np.power(A, 2)", {{"A", f64({4})}});
  EXPECT_GT(R.Stats.NumStubs, 0u);
  EXPECT_GT(R.Stats.NumSketches, 0u);
  EXPECT_GT(R.Stats.DfsCalls, 0);
  EXPECT_GT(R.SynthesisSeconds, 0.0);
}

TEST(SynthesizerTest, TimeoutIsHonored) {
  // A nontrivial search with an absurdly small budget must stop quickly
  // and report the timeout.
  InputDecls Decls = {{"A", f64({3, 3})}, {"B", f64({3, 3})}};
  auto Parsed = parseProgram("np.diag(np.dot(A, B))", Decls);
  ASSERT_TRUE(Parsed);
  SynthesisConfig Config;
  Config.TimeoutSeconds = 1e-4;
  SynthesisResult R = Synthesizer(Config).run(*Parsed.Prog);
  EXPECT_TRUE(R.TimedOut);
}

//===----------------------------------------------------------------------===//
// Cost models
//===----------------------------------------------------------------------===//

TEST(CostModelTest, ShapeScalerMapsExtents) {
  ShapeScaler Scaler;
  Scaler.addMapping(3, 300);
  Scaler.addMapping(4, 1000);
  EXPECT_EQ(Scaler.scaleUp(Shape({3, 4})), Shape({300, 1000}));
  EXPECT_EQ(Scaler.scaleUp(Shape({7})), Shape({7}));
}

TEST(CostModelTest, FlopModelScalesWithMappedShapes) {
  Program P;
  const Node *A = P.input("A", f64({3, 3}));
  const Node *B = P.input("B", f64({3, 3}));
  const Node *D = P.dot(A, B);
  FlopCostModel Model;
  ShapeScaler Identity;
  ShapeScaler Big;
  Big.addMapping(3, 100);
  EXPECT_DOUBLE_EQ(Model.costOfOp(D, Identity), 2.0 * 9 * 3);
  EXPECT_DOUBLE_EQ(Model.costOfOp(D, Big), 2.0 * 100 * 100 * 100);
}

TEST(CostModelTest, MeasuredModelCachesAndRanksDotAboveAdd) {
  Program P;
  const Node *A = P.input("A", f64({64, 64}));
  const Node *B = P.input("B", f64({64, 64}));
  const Node *D = P.dot(A, B);
  const Node *S = P.add(A, B);
  MeasuredCostModel Model;
  ShapeScaler Identity;
  double DotCost = Model.costOfOp(D, Identity);
  double AddCost = Model.costOfOp(S, Identity);
  EXPECT_GT(DotCost, AddCost);
  size_t Entries = Model.getNumCacheEntries();
  // Second query hits the cache.
  EXPECT_DOUBLE_EQ(Model.costOfOp(D, Identity), DotCost);
  EXPECT_EQ(Model.getNumCacheEntries(), Entries);
}

TEST(CostModelTest, MakeCostModelByName) {
  EXPECT_EQ(makeCostModel("flops")->getName(), "flops");
  EXPECT_EQ(makeCostModel("measured")->getName(), "measured");
}

//===----------------------------------------------------------------------===//
// Spec complexity (PRUNE metric)
//===----------------------------------------------------------------------===//

TEST(SpecComplexityTest, PeelingAnOpReducesComplexity) {
  sym::ExprContext Ctx;
  InputDecls Decls = {{"A", f64({4})}, {"B", f64({4})}};
  auto Full = parseProgram("A * B + A", Decls);
  auto Part = parseProgram("A * B", Decls);
  ASSERT_TRUE(Full && Part);
  double CFull = specComplexity(symexec::computeSpec(*Full.Prog, Ctx));
  double CPart = specComplexity(symexec::computeSpec(*Part.Prog, Ctx));
  EXPECT_LT(CPart, CFull);
}

TEST(SpecComplexityTest, MaskingReducesDensityAndComplexity) {
  sym::ExprContext Ctx;
  InputDecls Decls = {{"A", f64({3, 3})}};
  auto Masked = parseProgram("np.triu(A)", Decls);
  auto Plain = parseProgram("A + A - A", Decls); // same occurrence count? no
  ASSERT_TRUE(Masked && Plain);
  // triu zeroes 3 of 9 elements: occurrences 6, density 6/9.
  double C = specComplexity(symexec::computeSpec(*Masked.Prog, Ctx));
  EXPECT_NEAR(C, 6.0 * (6.0 / 9.0), 1e-12);
}

//===----------------------------------------------------------------------===//
// Bottom-up baseline
//===----------------------------------------------------------------------===//

TEST(BottomUpTest, FindsSmallRewrite) {
  auto Parsed = parseProgram("np.power(A, 2)", {{"A", f64({4})}});
  ASSERT_TRUE(Parsed);
  BottomUpConfig Config;
  Config.TimeoutSeconds = 30;
  Config.MaxDepth = 2;
  BottomUpSynthesizer Synth(Config);
  SynthesisResult R = Synth.run(*Parsed.Prog);
  EXPECT_TRUE(R.Improved);
  EXPECT_EQ(R.OptimizedSource, "A * A");
}

TEST(BottomUpTest, EquivalenceOfFoundProgram) {
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  auto Parsed = parseProgram("np.exp(np.log(A + B))", Decls);
  ASSERT_TRUE(Parsed);
  BottomUpConfig Config;
  Config.TimeoutSeconds = 30;
  Config.MaxDepth = 2;
  SynthesisResult R = BottomUpSynthesizer(Config).run(*Parsed.Prog);
  ASSERT_TRUE(R.Improved);
  RNG Rng(5);
  InputBinding Inputs = randomInputs(Decls, Rng);
  EXPECT_TRUE(interpretProgram(*Parsed.Prog, Inputs)
                  .allClose(interpretProgram(*R.Optimized, Inputs)));
}

TEST(BottomUpTest, RespectsProgramCap) {
  InputDecls Decls = {{"A", f64({3, 3})}, {"B", f64({3, 3})}};
  auto Parsed = parseProgram("np.diag(np.dot(A, B))", Decls);
  ASSERT_TRUE(Parsed);
  BottomUpConfig Config;
  Config.MaxDepth = 6;
  Config.MaxPrograms = 500; // tiny cap: enumeration must stop early
  SynthesisResult R = BottomUpSynthesizer(Config).run(*Parsed.Prog);
  EXPECT_LE(R.Stats.NumStubs, 520u);
}

TEST(SynthesizerTest, GrammarIncludesTensordot) {
  // Fig. 3's np.tensordot is enumerated with single-axis contractions;
  // spec dedup collapses the dot-equivalent ones but keeps genuinely new
  // contractions (e.g. contracting matching leading axes).
  InputDecls Decls = {{"A", f64({3, 4})}, {"B", f64({3, 4})}};
  auto Parsed = parseProgram("A + B", Decls);
  ASSERT_TRUE(Parsed);
  sym::ExprContext Ctx;
  auto Bindings = symexec::makeInputBindings(*Parsed.Prog, Ctx);
  FlopCostModel Model;
  ShapeScaler Scaler;
  SketchLibrary Library(*Parsed.Prog, Ctx, Bindings, Model, Scaler,
                        SketchLibrary::Config());
  bool FoundTensordot = false;
  for (const Stub &S : Library.getStubs())
    FoundTensordot |= S.Root->getKind() == OpKind::Tensordot;
  EXPECT_TRUE(FoundTensordot);
}

TEST(CostModelDeathTest, ConflictingScalerMappingAborts) {
  ShapeScaler Scaler;
  Scaler.addMapping(3, 100);
  Scaler.addMapping(3, 100); // same mapping is fine
  EXPECT_DEATH(Scaler.addMapping(3, 200), "conflicting");
}
