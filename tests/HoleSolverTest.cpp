//===- HoleSolverTest.cpp - Direct tests of the sketch hole solver --------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises SOLVE (paper Section V-A) directly: build the sketch library
/// for a small program, pick sketches by their printed form, and check
/// the hole specifications computed against hand-written targets —
/// elementwise inversion, linear coefficient extraction for contractions,
/// term attribution for reductions, and the unsolvable cases.
///
//===----------------------------------------------------------------------===//

#include "synth/HoleSolver.h"

#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::synth;
using symexec::SymTensor;

namespace {

/// Test harness owning one synthesis context for a given program.
class SolverHarness {
public:
  SolverHarness(const std::string &Source, const InputDecls &Decls)
      : Parsed(parseProgram(Source, Decls)) {
    EXPECT_TRUE(Parsed) << Parsed.Error;
    Bindings = symexec::makeInputBindings(*Parsed.Prog, Ctx);
    Phi = symexec::symbolicExecute(Parsed.Prog->getRoot(), Ctx, Bindings);
    Library.emplace(*Parsed.Prog, Ctx, Bindings, Model, Scaler,
                    SketchLibrary::Config());
    Solver.emplace(Ctx, Bindings);
  }

  /// Finds a sketch whose printed source equals \p Source (hole names are
  /// normalized away by substring matching around "?hole").
  const Sketch *findSketch(const std::string &Pattern) {
    for (const Sketch &Sk : Library->getSketches())
      if (printNode(Sk.Root) == Pattern)
        return &Sk;
    return nullptr;
  }

  /// Symbolically executes \p Source over this harness's inputs.
  SymTensor specOf(const std::string &Source, const InputDecls &Decls) {
    auto P = parseProgram(Source, Decls);
    EXPECT_TRUE(P) << P.Error;
    return symexec::symbolicExecute(P.Prog->getRoot(), Ctx, Bindings);
  }

  ParseResult Parsed;
  sym::ExprContext Ctx;
  symexec::SymBinding Bindings;
  SymTensor Phi;
  FlopCostModel Model;
  ShapeScaler Scaler;
  std::optional<SketchLibrary> Library;
  std::optional<HoleSolver> Solver;
};

TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

} // namespace

TEST(HoleSolverTest, ElementwiseAdditionInverts) {
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  SolverHarness H("A * B + B", Decls);
  // Sketch ?hole + B must have hole spec A*B.
  const Sketch *Sk = H.findSketch("?hole:f64(3) + B");
  ASSERT_NE(Sk, nullptr);
  auto HoleSpec = H.Solver->solve(*Sk, H.Phi);
  ASSERT_TRUE(HoleSpec.has_value());
  EXPECT_TRUE(HoleSpec->identicalTo(H.specOf("A * B", Decls)));
}

TEST(HoleSolverTest, ElementwiseMultiplicationDivides) {
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  SolverHarness H("A * B + B", Decls);
  // (?hole) * B == A*B + B  =>  hole == A + 1.
  const Sketch *Sk = H.findSketch("?hole:f64(3) * B");
  ASSERT_NE(Sk, nullptr);
  auto HoleSpec = H.Solver->solve(*Sk, H.Phi);
  ASSERT_TRUE(HoleSpec.has_value());
  EXPECT_TRUE(HoleSpec->identicalTo(H.specOf("A + 1", Decls)));
}

TEST(HoleSolverTest, ContractionExtractsLinearCoefficients) {
  InputDecls Decls = {{"A", f64({2, 3})}, {"C", f64({2, 3})},
                      {"B", f64({3})}};
  SolverHarness H("np.dot(np.multiply(A, C), B)", Decls);
  // dot(?hole, B) == Phi  =>  hole == A*C, recovered element-by-element
  // from the coefficients of B's symbols.
  const Sketch *Sk = H.findSketch("np.dot(?hole:f64(2, 3), B)");
  ASSERT_NE(Sk, nullptr);
  auto HoleSpec = H.Solver->solve(*Sk, H.Phi);
  ASSERT_TRUE(HoleSpec.has_value());
  EXPECT_TRUE(HoleSpec->identicalTo(H.specOf("A * C", Decls)));
}

TEST(HoleSolverTest, ReductionAttributesTermsByDivisibility) {
  InputDecls Decls = {{"A", f64({3, 3})}, {"B", f64({3, 3})}};
  SolverHarness H("np.diag(np.dot(A, B))", Decls);
  // sum(A * ?hole, axis=1) == diag(A@B)  =>  hole == B.T, one coefficient
  // of A[i,k] per equation term.
  const Sketch *Sk = H.findSketch("np.sum(?hole:f64(3, 3) * A, axis=1)");
  ASSERT_NE(Sk, nullptr);
  auto HoleSpec = H.Solver->solve(*Sk, H.Phi);
  ASSERT_TRUE(HoleSpec.has_value());
  EXPECT_TRUE(HoleSpec->identicalTo(H.specOf("B.T", Decls)));
}

TEST(HoleSolverTest, NonlinearSqrtInverts) {
  InputDecls Decls = {{"A", f64({3})}};
  SolverHarness H("A + A", Decls);
  // sqrt(?hole) == 2A  =>  hole == 4A^2 (positivity assumption).
  const Sketch *Sk = H.findSketch("np.sqrt(?hole:f64(3))");
  ASSERT_NE(Sk, nullptr);
  auto HoleSpec = H.Solver->solve(*Sk, H.Phi);
  ASSERT_TRUE(HoleSpec.has_value());
  EXPECT_TRUE(HoleSpec->identicalTo(H.specOf("4 * A * A", Decls)));
}

TEST(HoleSolverTest, ExponentialInverts) {
  InputDecls Decls = {{"A", f64({3})}};
  SolverHarness H("A + A", Decls);
  const Sketch *Sk = H.findSketch("np.exp(?hole:f64(3))");
  ASSERT_NE(Sk, nullptr);
  auto HoleSpec = H.Solver->solve(*Sk, H.Phi);
  ASSERT_TRUE(HoleSpec.has_value());
  EXPECT_TRUE(HoleSpec->identicalTo(H.specOf("np.log(2 * A)", Decls)));
}

TEST(HoleSolverTest, ShapeMismatchFails) {
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  SolverHarness H("A + B", Decls);
  // A scalar-shaped spec cannot be solved by a vector-shaped sketch.
  const Sketch *Sk = H.findSketch("?hole:f64(3) + B");
  ASSERT_NE(Sk, nullptr);
  SymTensor ScalarPhi = SymTensor::scalar(H.Ctx.symbol("z"));
  EXPECT_FALSE(H.Solver->solve(*Sk, ScalarPhi).has_value());
}

TEST(HoleSolverTest, InconsistentSystemFails) {
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}, {"s", f64({})}};
  SolverHarness H("A + B", Decls);
  // (?hole scalar) + B == A + B would need hole == A[i] - differing per
  // element: unsolvable for a scalar hole.
  const Sketch *Sk = H.findSketch("B + ?hole:f64()");
  ASSERT_NE(Sk, nullptr);
  EXPECT_FALSE(H.Solver->solve(*Sk, H.Phi).has_value());
}

TEST(HoleSolverTest, SolutionsAreVerifiedByReexecution) {
  // Every accepted solution re-executes to exactly Phi; spot-check by
  // re-executing manually.
  InputDecls Decls = {{"A", f64({2, 3})}, {"C", f64({2, 3})},
                      {"B", f64({3})}};
  SolverHarness H("np.dot(np.multiply(A, C), B)", Decls);
  const Sketch *Sk = H.findSketch("np.dot(?hole:f64(2, 3), B)");
  ASSERT_NE(Sk, nullptr);
  auto HoleSpec = H.Solver->solve(*Sk, H.Phi);
  ASSERT_TRUE(HoleSpec.has_value());
  symexec::SymBinding Extended = H.Bindings;
  Extended.insert_or_assign(Sk->Hole->getName(), *HoleSpec);
  SymTensor Check =
      symexec::symbolicExecute(Sk->Root, H.Ctx, Extended);
  EXPECT_TRUE(Check.identicalTo(H.Phi));
}

TEST(HoleSolverTest, CachingReturnsSameResult) {
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  SolverHarness H("A * B + B", Decls);
  const Sketch *Sk = H.findSketch("?hole:f64(3) + B");
  ASSERT_NE(Sk, nullptr);
  int64_t Before = H.Solver->getNumCalls();
  auto First = H.Solver->solve(*Sk, H.Phi);
  auto Second = H.Solver->solve(*Sk, H.Phi);
  EXPECT_EQ(H.Solver->getNumCalls(), Before + 2);
  ASSERT_TRUE(First && Second);
  EXPECT_TRUE(First->identicalTo(*Second));
}
