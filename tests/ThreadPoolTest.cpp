//===- ThreadPoolTest.cpp - Work-stealing thread pool unit tests ----------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support ThreadPool: result/exception propagation
/// through futures, submission from worker threads, the drain-on-
/// destruction contract, and parallelFor (including calls from inside a
/// worker, which exercise the help-while-waiting path).  These run under
/// the tsan ctest label so scheduling bugs fail the build.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace stenso;

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.getNumThreads(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool Pool(4);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPoolTest, TasksMaySubmitAndJoinMoreTasks) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  // Each root task fans out children from inside a worker and joins on
  // them via waitFor (a plain future::get() here could park all four
  // workers on children that then have no thread left to run on).
  std::vector<std::future<void>> Roots;
  for (int I = 0; I < 8; ++I)
    Roots.push_back(Pool.submit([&Pool, &Count] {
      std::vector<std::future<void>> Children;
      for (int J = 0; J < 8; ++J)
        Children.push_back(Pool.submit([&Count] {
          Count.fetch_add(1, std::memory_order_relaxed);
        }));
      for (std::future<void> &C : Children)
        Pool.waitFor(C);
      Count.fetch_add(1, std::memory_order_relaxed);
    }));
  for (std::future<void> &R : Roots)
    R.get();
  EXPECT_EQ(Count.load(), 8 * 8 + 8);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutureNotWorker) {
  ThreadPool Pool(2);
  std::future<int> Bad =
      Pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // The worker survives a throwing task; the pool remains usable.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsLoadedQueue) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        Count.fetch_add(1, std::memory_order_relaxed);
      });
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversExactlyTheRange) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(257);
  Pool.parallelFor(0, Hits.size(), [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::atomic<int> &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingletonRanges) {
  ThreadPool Pool(2);
  int Calls = 0;
  Pool.parallelFor(5, 5, [&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  Pool.parallelFor(5, 6, [&](size_t I) {
    EXPECT_EQ(I, 5u);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
}

TEST(ThreadPoolTest, ParallelForFromInsideAWorkerDoesNotDeadlock) {
  // A 1-thread pool is the adversarial case: the nested parallelFor's
  // runner task lands on the only worker's own deque while that worker
  // is the caller — completion requires the help-while-waiting path.
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  Pool.submit([&] {
      Pool.parallelFor(0, 32, [&](size_t) {
        Count.fetch_add(1, std::memory_order_relaxed);
      });
    })
      .get();
  EXPECT_EQ(Count.load(), 32);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstBodyException) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  try {
    Pool.parallelFor(0, 64, [&](size_t I) {
      Ran.fetch_add(1, std::memory_order_relaxed);
      if (I == 13)
        throw std::runtime_error("unlucky");
    });
    FAIL() << "expected the body exception to surface";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "unlucky");
  }
  EXPECT_GE(Ran.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSelfBalancesUnevenWork) {
  ThreadPool Pool(4);
  // Iteration cost varies by 100x; the shared-counter claim scheme must
  // still complete every index (sum identity checks no index ran twice).
  std::atomic<int64_t> Sum{0};
  Pool.parallelFor(0, 128, [&](size_t I) {
    if (I % 32 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Sum.fetch_add(static_cast<int64_t>(I), std::memory_order_relaxed);
  });
  EXPECT_EQ(Sum.load(), 127 * 128 / 2);
}
