//===- SymExecTest.cpp - Unit tests for symbolic execution ----------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "symexec/SymbolicExecutor.h"

#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "support/RNG.h"
#include "symbolic/Evaluator.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::symexec;

static TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

/// Parses and symbolically executes \p Source, returning the spec.
static SymTensor specOf(sym::ExprContext &Ctx, const std::string &Source,
                        const InputDecls &Decls) {
  auto R = parseProgram(Source, Decls);
  EXPECT_TRUE(R) << Source << ": " << R.Error;
  return computeSpec(*R.Prog, Ctx);
}

//===----------------------------------------------------------------------===//
// Spec identity: syntactically different, algebraically equal programs
//===----------------------------------------------------------------------===//

namespace {

struct SpecPair {
  const char *Name;
  const char *Lhs;
  const char *Rhs;
  InputDecls Decls;
};

class SpecIdentityTest : public ::testing::TestWithParam<SpecPair> {};

} // namespace

TEST_P(SpecIdentityTest, SpecsAreIdentical) {
  const SpecPair &P = GetParam();
  sym::ExprContext Ctx;
  SymTensor A = specOf(Ctx, P.Lhs, P.Decls);
  SymTensor B = specOf(Ctx, P.Rhs, P.Decls);
  EXPECT_TRUE(A.identicalTo(B)) << "\nlhs: " << A.toString()
                                << "\nrhs: " << B.toString();
}

// These are the paper's motivating rewrites (Section II and VII-D): both
// sides must symbolically execute to the *same canonical spec*.
static const SpecPair SpecPairs[] = {
    {"diag_dot", "np.diag(np.dot(A, B))", "np.sum(A * B.T, axis=1)",
     {{"A", f64({3, 3})}, {"B", f64({3, 3})}}},
    {"scale_dot", "np.dot(a * A, B)", "a * np.dot(A, B)",
     {{"a", f64({})}, {"A", f64({3, 2})}, {"B", f64({2})}}},
    {"mat_vec", "np.sum(A * x, axis=1)", "np.dot(A, x)",
     {{"A", f64({3, 4})}, {"x", f64({4})}}},
    {"sqrt_quotient", "(A + B) / np.sqrt(A + B)", "np.sqrt(A + B)",
     {{"A", f64({4})}, {"B", f64({4})}}},
    {"log_exp", "np.exp(np.log(A + B))", "A + B",
     {{"A", f64({4})}, {"B", f64({4})}}},
    {"log_exp_div", "np.exp(np.log(A) - np.log(B))", "A / B",
     {{"A", f64({4})}, {"B", f64({4})}}},
    {"double_transpose", "np.transpose(np.transpose(A))", "A",
     {{"A", f64({3, 4})}}},
    {"sum_sum", "np.sum(np.sum(A, axis=0), axis=0)", "np.sum(A)",
     {{"A", f64({3, 4})}}},
    {"sum_stack", "np.sum(np.stack([A, B, C]), axis=0)", "A + B + C",
     {{"A", f64({4})}, {"B", f64({4})}, {"C", f64({4})}}},
    {"max_stack", "np.max(np.stack([A, B]), axis=0)", "np.maximum(A, B)",
     {{"A", f64({4})}, {"B", f64({4})}}},
    {"trace_dot", "np.trace(A @ B.T)", "np.sum(A * B)",
     {{"A", f64({3, 3})}, {"B", f64({3, 3})}}},
    {"vectorize", "np.stack([x * 2 for x in A], axis=0)", "A * 2",
     {{"A", f64({4, 3})}}},
    {"vec_lerp", "np.stack([(x*a + (1 - a)*y) for a in A])",
     "x*A + (1 - A)*y",
     {{"A", f64({5})}, {"x", f64({})}, {"y", f64({})}}},
    {"common_factor", "A * B + C * B", "(A + C) * B",
     {{"A", f64({4})}, {"B", f64({4})}, {"C", f64({4})}}},
    {"synth6", "np.power(np.sqrt(A) + np.sqrt(A), 2)", "4 * A",
     {{"A", f64({4})}}},
    {"synth7", "np.power(A, 6) / np.power(A, 4)", "A * A",
     {{"A", f64({4})}}},
    {"synth8", "A * B + A * B", "2 * A * B",
     {{"A", f64({4})}, {"B", f64({4})}}},
    {"reorder_dot", "x.T @ A @ x", "np.dot(x, np.dot(A, x))",
     {{"x", f64({3})}, {"A", f64({3, 3})}}},
    {"reshape_dot",
     "np.reshape(np.dot(np.reshape(A, (2, 3, 1, 4)), B), (2, 3, 5))",
     "np.dot(np.reshape(A, (2, 3, 4)), B)",
     {{"A", f64({2, 3, 4})}, {"B", f64({4, 5})}}},
    {"power_neg", "np.power(A, -1)", "1 / A", {{"A", f64({4})}}},
    {"elem_square", "np.power(A, 2)", "A * A", {{"A", f64({4})}}},
};

INSTANTIATE_TEST_SUITE_P(Rewrites, SpecIdentityTest,
                         ::testing::ValuesIn(SpecPairs),
                         [](const ::testing::TestParamInfo<SpecPair> &I) {
                           return I.param.Name;
                         });

//===----------------------------------------------------------------------===//
// Spec distinguishes genuinely different programs
//===----------------------------------------------------------------------===//

TEST(SymExecTest, DistinguishesDifferentPrograms) {
  sym::ExprContext Ctx;
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  SymTensor S1 = specOf(Ctx, "A + B", Decls);
  SymTensor S2 = specOf(Ctx, "A * B", Decls);
  SymTensor S3 = specOf(Ctx, "A - B", Decls);
  EXPECT_FALSE(S1.identicalTo(S2));
  EXPECT_FALSE(S1.identicalTo(S3));
  EXPECT_FALSE(S2.identicalTo(S3));
}

//===----------------------------------------------------------------------===//
// Cross-validation against the concrete interpreter
//===----------------------------------------------------------------------===//

namespace {

/// Binds every symbol of a SymTensor spec from concrete input tensors.
sym::Environment environmentFor(const SymTensor &Spec,
                                const InputBinding &Inputs) {
  sym::Environment Env;
  for (const sym::Expr *E : Spec.getElements())
    for (const sym::SymbolExpr *S : sym::collectSymbols(E)) {
      const Tensor &T = Inputs.at(S->getTensorName());
      int64_t Flat = S->getIndices().empty()
                         ? 0
                         : T.getShape().linearize(S->getIndices());
      Env.emplace(S, T.at(Flat));
    }
  return Env;
}

struct CrossCase {
  const char *Name;
  const char *Source;
  InputDecls Decls;
};

class CrossValidationTest : public ::testing::TestWithParam<CrossCase> {};

} // namespace

TEST_P(CrossValidationTest, SymbolicAgreesWithConcrete) {
  const CrossCase &C = GetParam();
  auto R = parseProgram(C.Source, C.Decls);
  ASSERT_TRUE(R) << R.Error;

  sym::ExprContext Ctx;
  SymTensor Spec = computeSpec(*R.Prog, Ctx);

  RNG Rng(41);
  InputBinding Inputs;
  for (const auto &[Name, Type] : C.Decls) {
    Tensor T(Type.TShape, Type.Dtype);
    for (int64_t I = 0; I < T.getNumElements(); ++I)
      T.at(I) = Type.Dtype == DType::Bool ? (Rng.chance(0.5) ? 1.0 : 0.0)
                                          : Rng.positive();
    Inputs.emplace(Name, std::move(T));
  }

  Tensor Concrete = interpretProgram(*R.Prog, Inputs);
  ASSERT_EQ(Concrete.getShape(), Spec.getShape());

  sym::Environment Env = environmentFor(Spec, Inputs);
  for (int64_t I = 0; I < Concrete.getNumElements(); ++I) {
    double Symbolic = sym::evaluate(Spec.at(I), Env);
    EXPECT_NEAR(Concrete.at(I), Symbolic,
                1e-9 * std::max(1.0, std::fabs(Symbolic)))
        << C.Name << " element " << I;
  }
}

static const CrossCase CrossCases[] = {
    {"dot_chain", "np.dot(np.multiply(A, C), B)",
     {{"A", f64({2, 3})}, {"C", f64({2, 3})}, {"B", f64({3})}}},
    {"tensordot", "np.tensordot(A, B, axes=([0, 1], [0, 1]))",
     {{"A", f64({2, 3})}, {"B", f64({2, 3})}}},
    {"triu_mask", "np.triu(A) + np.tril(A)",
     {{"A", f64({3, 3})}}},
    {"where_mask", "np.where(A < B, A * 2, B)",
     {{"A", f64({4})}, {"B", f64({4})}}},
    {"reductions", "np.max(A, axis=0) + np.sum(A, axis=0)",
     {{"A", f64({3, 2})}}},
    {"full_use", "A + np.full((3,), 2)", {{"A", f64({3})}}},
    {"comprehension", "np.stack([np.sum(r * r) for r in A])",
     {{"A", f64({3, 4})}}},
    {"exp_log", "np.exp(np.log(A) - np.log(B))",
     {{"A", f64({3})}, {"B", f64({3})}}},
};

INSTANTIATE_TEST_SUITE_P(Programs, CrossValidationTest,
                         ::testing::ValuesIn(CrossCases),
                         [](const ::testing::TestParamInfo<CrossCase> &I) {
                           return I.param.Name;
                         });

//===----------------------------------------------------------------------===//
// Complexity metric ingredients
//===----------------------------------------------------------------------===//

TEST(SymTensorTest, DensityOfTriangle) {
  sym::ExprContext Ctx;
  SymTensor Spec = specOf(Ctx, "np.triu(A)", {{"A", f64({3, 3})}});
  // 6 of 9 elements survive the upper-triangle mask.
  EXPECT_NEAR(Spec.density(), 6.0 / 9.0, 1e-12);
}

TEST(SymTensorTest, DistinctInputCount) {
  sym::ExprContext Ctx;
  SymTensor Spec =
      specOf(Ctx, "A * B + A", {{"A", f64({2})}, {"B", f64({2})}});
  EXPECT_EQ(Spec.countDistinctInputs(), 2);
}

TEST(SymTensorTest, MakeInputNamesAndTags) {
  sym::ExprContext Ctx;
  SymTensor T = SymTensor::makeInput(Ctx, "A", Shape({2, 2}));
  const auto *S = cast<sym::SymbolExpr>(T.at({1, 0}));
  EXPECT_EQ(S->getName(), "A[1,0]");
  EXPECT_EQ(S->getTensorName(), "A");
  EXPECT_EQ(S->getIndices(), (std::vector<int64_t>{1, 0}));

  SymTensor Scalar = SymTensor::makeInput(Ctx, "a", Shape());
  EXPECT_EQ(cast<sym::SymbolExpr>(Scalar.item())->getName(), "a");
}

//===----------------------------------------------------------------------===//
// Masking and selection compositions
//===----------------------------------------------------------------------===//

TEST(SymExecTest, TriangleMasksComposeToFullMatrix) {
  // triu(A) + tril(A) - diagflat-free: overlaps only on the diagonal, so
  // triu(A, 0) + tril(A, -1) == A exactly.
  sym::ExprContext Ctx;
  InputDecls Decls = {{"A", f64({3, 3})}};
  SymTensor Lhs = specOf(Ctx, "np.triu(A) + np.tril(A, -1)", Decls);
  SymTensor Rhs = specOf(Ctx, "A", Decls);
  EXPECT_TRUE(Lhs.identicalTo(Rhs));
}

TEST(SymExecTest, WhereWithConstantConditionFolds) {
  sym::ExprContext Ctx;
  InputDecls Decls = {{"A", f64({3})}, {"B", f64({3})}};
  // 1 < 2 folds to true; the select disappears entirely.
  SymTensor Spec = specOf(Ctx, "np.where(np.full((3,), 1) < np.full((3,), 2), A, B)",
                          Decls);
  EXPECT_TRUE(Spec.identicalTo(specOf(Ctx, "A", Decls)));
}

TEST(SymExecTest, MaskedSpecHasLowerDensity) {
  sym::ExprContext Ctx;
  InputDecls Decls = {{"A", f64({4, 4})}};
  SymTensor Full = specOf(Ctx, "A + A", Decls);
  SymTensor Masked = specOf(Ctx, "np.triu(A + A)", Decls);
  EXPECT_DOUBLE_EQ(Full.density(), 1.0);
  EXPECT_LT(Masked.density(), 1.0);
  EXPECT_NEAR(Masked.density(), 10.0 / 16.0, 1e-12);
}

TEST(SymExecTest, TensordotSpecMatchesDotSpec) {
  sym::ExprContext Ctx;
  InputDecls Decls = {{"A", f64({2, 3})}, {"B", f64({3, 2})}};
  SymTensor ViaDot = specOf(Ctx, "np.dot(A, B)", Decls);
  SymTensor ViaTd = specOf(Ctx, "np.tensordot(A, B, axes=([1], [0]))", Decls);
  EXPECT_TRUE(ViaDot.identicalTo(ViaTd));
}
