//===- ParallelSynthTest.cpp - Parallel-vs-sequential differential tests --==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract of the parallel sketch search, tested
/// differentially: for one representative benchmark per transform class
/// (paper Table I), synthesis with --jobs 2/4/8 must return the
/// byte-identical program, the exactly-equal cost, and the same
/// AbortReason as the sequential engine.  Budget-exhaustion runs use
/// *decisive* budgets — a node cap small enough to latch during
/// single-threaded setup, and an already-expired wall clock — so the
/// latched reason is schedule-free and the tests double as a proof that
/// the latch itself is race-free.  Everything here uses the flops cost
/// model: measured costs embed wall time and are nondeterministic by
/// nature, which would mask (or fake) engine divergence.
///
//===----------------------------------------------------------------------===//

#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "evalsuite/Harness.h"
#include "observe/DecisionLog.h"
#include "observe/Trace.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::evalsuite;
using namespace stenso::synth;

namespace {

SynthesisConfig parallelTestConfig(int Jobs) {
  SynthesisConfig Config;
  Config.CostModelName = "flops"; // deterministic costs, see \file header
  // Generous: sanitizer builds are ~10x slower and must never trip the
  // wall clock mid-search, which would make the comparison flaky.
  Config.TimeoutSeconds = 300;
  Config.Jobs = Jobs;
  return Config;
}

/// Synthesizes benchmark \p Name at its reduced shapes with \p Jobs
/// workers (costs scaled to the full shapes, as the harness does).
SynthesisResult runBenchmark(const std::string &Name, int Jobs) {
  const BenchmarkDef *Def = findBenchmark(Name);
  EXPECT_NE(Def, nullptr) << Name;
  auto Parsed = parseProgram(Def->sourceFor(false), Def->declsFor(false));
  EXPECT_TRUE(Parsed) << Parsed.Error;
  return Synthesizer(parallelTestConfig(Jobs)).run(*Parsed.Prog,
                                                   Def->scaler());
}

/// What a degraded run emits: the original program as the synthesizer
/// *prints* it (a re-serialization of the parse tree, not the benchmark's
/// source bytes — spacing and redundant parentheses are normalized away).
std::string printedOriginal(const BenchmarkDef &Def) {
  auto Parsed = parseProgram(Def.sourceFor(false), Def.declsFor(false));
  EXPECT_TRUE(Parsed) << Parsed.Error;
  return printNode(Parsed.Prog->getRoot());
}

/// The whole differential contract between two runs of the same search.
void expectIdenticalOutcome(const SynthesisResult &Sequential,
                            const SynthesisResult &Parallel, int Jobs) {
  EXPECT_EQ(Sequential.Improved, Parallel.Improved) << "jobs=" << Jobs;
  // Byte-identical program text, not just an equivalent program.
  EXPECT_EQ(Sequential.OptimizedSource, Parallel.OptimizedSource)
      << "jobs=" << Jobs;
  // Exactly equal costs: both engines evaluate the same flops polynomial
  // on the same candidate, so even the doubles must match bit-for-bit.
  EXPECT_EQ(Sequential.OriginalCost, Parallel.OriginalCost)
      << "jobs=" << Jobs;
  EXPECT_EQ(Sequential.OptimizedCost, Parallel.OptimizedCost)
      << "jobs=" << Jobs;
  EXPECT_EQ(Sequential.Abort, Parallel.Abort) << "jobs=" << Jobs;
  EXPECT_EQ(Sequential.TimedOut, Parallel.TimedOut) << "jobs=" << Jobs;
}

/// One representative benchmark per transform class (suite order), all at
/// small reduced shapes so a full jobs-{1,2,4,8} sweep stays cheap.
class ParallelDifferentialTest
    : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(ParallelDifferentialTest, JobsSweepMatchesSequential) {
  SynthesisResult Sequential = runBenchmark(GetParam(), /*Jobs=*/1);
  // The representative benchmarks all have a known improvement; a search
  // that found nothing would make the differential check vacuous.
  EXPECT_TRUE(Sequential.Improved) << GetParam();
  EXPECT_EQ(Sequential.Abort, AbortReason::None);
  for (int Jobs : {2, 4, 8}) {
    SynthesisResult Parallel = runBenchmark(GetParam(), Jobs);
    expectIdenticalOutcome(Sequential, Parallel, Jobs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OnePerTransformClass, ParallelDifferentialTest,
    ::testing::Values("synth_12",    // Algebraic Simplification
                      "diag_dot",    // Identity Replacement
                      "dot_trans_2", // Redundancy Elimination
                      "elem_square", // Strength Reduction
                      "vec_lerp"),   // Vectorization
    [](const ::testing::TestParamInfo<const char *> &I) {
      return std::string(I.param);
    });

TEST(ParallelSynthTest, JobsZeroUsesHardwareThreadsAndStillMatches) {
  SynthesisResult Sequential = runBenchmark("diag_dot", /*Jobs=*/1);
  SynthesisResult Auto = runBenchmark("diag_dot", /*Jobs=*/0);
  expectIdenticalOutcome(Sequential, Auto, /*Jobs=*/0);
}

TEST(ParallelSynthTest, RepeatedParallelRunsAreStable) {
  // Determinism also means run-to-run: the same parallel search twice
  // under a real scheduler returns the same everything.
  SynthesisResult First = runBenchmark("diag_dot", /*Jobs=*/4);
  SynthesisResult Second = runBenchmark("diag_dot", /*Jobs=*/4);
  expectIdenticalOutcome(First, Second, /*Jobs=*/4);
}

TEST(ParallelSynthTest, LiveTelemetryDoesNotPerturbTheSearch) {
  // Telemetry is observation-only by contract (DESIGN.md §9): an active
  // trace session plus an attached decision log around the search must
  // leave the jobs=N differential bit-for-bit intact.
  SynthesisResult Bare = runBenchmark("diag_dot", /*Jobs=*/1);
  EXPECT_TRUE(Bare.Improved);
  const BenchmarkDef *Def = findBenchmark("diag_dot");
  ASSERT_NE(Def, nullptr);
  auto Parsed = parseProgram(Def->sourceFor(false), Def->declsFor(false));
  ASSERT_TRUE(Parsed) << Parsed.Error;
  for (int Jobs : {1, 4}) {
    observe::TraceSession Session;
    ASSERT_TRUE(Session.start());
    observe::DecisionLog Log;
    SynthesisConfig Config = parallelTestConfig(Jobs);
    Config.Decisions = &Log;
    SynthesisResult Traced =
        Synthesizer(Config).run(*Parsed.Prog, Def->scaler());
    Session.stop();
    expectIdenticalOutcome(Bare, Traced, Jobs);
    // And the telemetry actually observed the run.
    EXPECT_GT(Log.size(), 0u) << "jobs=" << Jobs;
#if STENSO_TRACE_ENABLED
    EXPECT_GT(Session.eventCount(), 0u) << "jobs=" << Jobs;
#endif
  }
}

//===----------------------------------------------------------------------===//
// Budget exhaustion under concurrency
//===----------------------------------------------------------------------===//

TEST(ParallelSynthTest, NodeCapAbortsIdenticallyAtEveryJobCount) {
  const BenchmarkDef *Def = findBenchmark("diag_dot");
  ASSERT_NE(Def, nullptr);
  auto Parsed = parseProgram(Def->sourceFor(false), Def->declsFor(false));
  ASSERT_TRUE(Parsed) << Parsed.Error;
  for (int Jobs : {1, 2, 4, 8}) {
    SynthesisConfig Config = parallelTestConfig(Jobs);
    // Decisively tiny: the cap latches while the sketch library is built,
    // i.e. before any worker exists, so every engine must observe the
    // same latched reason — a near-boundary cap could legitimately
    // classify differently across schedules and proves nothing.
    Config.MaxSymbolicNodes = 50;
    SynthesisResult Result =
        Synthesizer(Config).run(*Parsed.Prog, Def->scaler());
    EXPECT_EQ(Result.Abort, AbortReason::BudgetExceeded) << "jobs=" << Jobs;
    EXPECT_FALSE(Result.Improved) << "jobs=" << Jobs;
    EXPECT_FALSE(Result.TimedOut) << "jobs=" << Jobs;
    // Well-formed degradation: the original program at its original cost.
    EXPECT_EQ(Result.OptimizedSource, printedOriginal(*Def));
    EXPECT_EQ(Result.OptimizedCost, Result.OriginalCost);
  }
}

TEST(ParallelSynthTest, ExpiredWallClockAbortsIdenticallyAtEveryJobCount) {
  const BenchmarkDef *Def = findBenchmark("diag_dot");
  ASSERT_NE(Def, nullptr);
  auto Parsed = parseProgram(Def->sourceFor(false), Def->declsFor(false));
  ASSERT_TRUE(Parsed) << Parsed.Error;
  for (int Jobs : {1, 2, 4, 8}) {
    SynthesisConfig Config = parallelTestConfig(Jobs);
    Config.TimeoutSeconds = 1e-9; // expired before the search starts
    SynthesisResult Result =
        Synthesizer(Config).run(*Parsed.Prog, Def->scaler());
    EXPECT_EQ(Result.Abort, AbortReason::Timeout) << "jobs=" << Jobs;
    EXPECT_TRUE(Result.TimedOut) << "jobs=" << Jobs;
    EXPECT_FALSE(Result.Improved) << "jobs=" << Jobs;
    EXPECT_EQ(Result.OptimizedSource, printedOriginal(*Def));
  }
}

TEST(ParallelSynthTest, SharedBudgetIsChargedInsteadOfConfigLimits) {
  const BenchmarkDef *Def = findBenchmark("diag_dot");
  ASSERT_NE(Def, nullptr);
  auto Parsed = parseProgram(Def->sourceFor(false), Def->declsFor(false));
  ASSERT_TRUE(Parsed) << Parsed.Error;
  ResourceBudget::Limits L;
  L.MaxSymbolicNodes = 50;
  ResourceBudget Shared(L);
  SynthesisConfig Config = parallelTestConfig(/*Jobs=*/4);
  Config.SharedBudget = &Shared;
  SynthesisResult Result =
      Synthesizer(Config).run(*Parsed.Prog, Def->scaler());
  EXPECT_EQ(Result.Abort, AbortReason::BudgetExceeded);
  EXPECT_TRUE(Shared.latched());
  EXPECT_GT(Shared.getSymbolicNodes(), 0);
  // A second run against the already-latched budget degrades immediately
  // with the *same* reason — the latch is sticky across runs.
  SynthesisResult Again =
      Synthesizer(Config).run(*Parsed.Prog, Def->scaler());
  EXPECT_EQ(Again.Abort, AbortReason::BudgetExceeded);
  EXPECT_FALSE(Again.Improved);
}

//===----------------------------------------------------------------------===//
// Suite-level parallelism under one global budget
//===----------------------------------------------------------------------===//

TEST(ParallelSynthTest, SuiteUnderExhaustedGlobalBudgetDegradesEverywhere) {
  // Four concurrent benchmarks all charging one near-empty global budget:
  // every run must degrade to its original program with the budget
  // reason, in suite order, with no hang and no partial result.
  ResourceBudget::Limits L;
  L.MaxSymbolicNodes = 50;
  ResourceBudget Global(L);
  SuiteRunOptions Options;
  Options.Jobs = 4;
  Options.GlobalBudget = &Global;
  std::vector<BenchmarkRun> Runs =
      synthesizeSuite(parallelTestConfig(/*Jobs=*/1), Options);
  const std::vector<BenchmarkDef> &Suite = benchmarkSuite();
  ASSERT_EQ(Runs.size(), Suite.size());
  for (size_t I = 0; I < Runs.size(); ++I) {
    ASSERT_EQ(Runs[I].Def, &Suite[I]) << "suite order violated at " << I;
    EXPECT_EQ(Runs[I].Synthesis.Abort, AbortReason::BudgetExceeded)
        << Suite[I].Name;
    EXPECT_FALSE(Runs[I].Synthesis.Improved) << Suite[I].Name;
    EXPECT_EQ(Runs[I].Synthesis.OptimizedSource, printedOriginal(Suite[I]))
        << Suite[I].Name;
  }
  EXPECT_TRUE(Global.latched());
}
