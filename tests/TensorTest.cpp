//===- TensorTest.cpp - Unit tests for the tensor runtime -----------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tensor/TensorOps.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace stenso;

static Tensor makeIota(Shape S, double Start = 1.0) {
  Tensor T(S);
  for (int64_t I = 0; I < T.getNumElements(); ++I)
    T.at(I) = Start + static_cast<double>(I);
  return T;
}

//===----------------------------------------------------------------------===//
// Shape
//===----------------------------------------------------------------------===//

TEST(ShapeTest, BasicProperties) {
  Shape S({2, 3, 4});
  EXPECT_EQ(S.getRank(), 3);
  EXPECT_EQ(S.getNumElements(), 24);
  EXPECT_EQ(S.getStrides(), (std::vector<int64_t>{12, 4, 1}));
}

TEST(ShapeTest, ScalarShape) {
  Shape S;
  EXPECT_TRUE(S.isScalar());
  EXPECT_EQ(S.getNumElements(), 1);
}

TEST(ShapeTest, LinearizeRoundTrip) {
  Shape S({3, 4});
  for (int64_t Flat = 0; Flat < S.getNumElements(); ++Flat)
    EXPECT_EQ(S.linearize(S.delinearize(Flat)), Flat);
}

TEST(ShapeTest, NormalizeAxisHandlesNegative) {
  Shape S({2, 5});
  EXPECT_EQ(S.normalizeAxis(-1), 1);
  EXPECT_EQ(S.normalizeAxis(0), 0);
}

TEST(ShapeTest, DropAndInsertAxis) {
  Shape S({2, 3, 4});
  EXPECT_EQ(S.dropAxis(1), Shape({2, 4}));
  EXPECT_EQ(S.insertAxis(0, 7), Shape({7, 2, 3, 4}));
}

TEST(ShapeTest, BroadcastRules) {
  EXPECT_EQ(*Shape::broadcast({3, 1}, {1, 4}), Shape({3, 4}));
  EXPECT_EQ(*Shape::broadcast({5}, {2, 5}), Shape({2, 5}));
  EXPECT_EQ(*Shape::broadcast({}, {2, 2}), Shape({2, 2}));
  EXPECT_FALSE(Shape::broadcast({3}, {4}).has_value());
}

//===----------------------------------------------------------------------===//
// Elementwise ops
//===----------------------------------------------------------------------===//

TEST(TensorOpsTest, AddSameShape) {
  Tensor A = makeIota({2, 2});
  Tensor B = makeIota({2, 2}, 10.0);
  Tensor C = tops::add(A, B);
  EXPECT_DOUBLE_EQ(C.at({0, 0}), 11.0);
  EXPECT_DOUBLE_EQ(C.at({1, 1}), 17.0);
}

TEST(TensorOpsTest, BroadcastScalar) {
  Tensor A = makeIota({2, 3});
  Tensor C = tops::multiply(A, Tensor::scalar(2.0));
  EXPECT_EQ(C.getShape(), Shape({2, 3}));
  for (int64_t I = 0; I < 6; ++I)
    EXPECT_DOUBLE_EQ(C.at(I), 2.0 * A.at(I));
}

TEST(TensorOpsTest, BroadcastRowAndColumn) {
  Tensor Col(Shape({3, 1}), {1, 2, 3});
  Tensor Row(Shape({1, 4}), {10, 20, 30, 40});
  Tensor C = tops::add(Col, Row);
  EXPECT_EQ(C.getShape(), Shape({3, 4}));
  EXPECT_DOUBLE_EQ(C.at({0, 0}), 11.0);
  EXPECT_DOUBLE_EQ(C.at({2, 3}), 43.0);
}

TEST(TensorOpsTest, SubtractDividePower) {
  Tensor A(Shape({2}), {8, 27});
  Tensor B(Shape({2}), {2, 3});
  EXPECT_DOUBLE_EQ(tops::subtract(A, B).at(1), 24.0);
  EXPECT_DOUBLE_EQ(tops::divide(A, B).at(0), 4.0);
  EXPECT_DOUBLE_EQ(tops::power(B, Tensor::scalar(3.0)).at(1), 27.0);
}

TEST(TensorOpsTest, UnaryMathMatchesStd) {
  Tensor A(Shape({3}), {1.0, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(tops::sqrt(A).at(2), 3.0);
  EXPECT_DOUBLE_EQ(tops::exp(A).at(0), std::exp(1.0));
  EXPECT_DOUBLE_EQ(tops::log(A).at(1), std::log(4.0));
  EXPECT_DOUBLE_EQ(tops::negate(A).at(0), -1.0);
}

TEST(TensorOpsTest, MaximumMinimumLess) {
  Tensor A(Shape({3}), {1, 5, 3});
  Tensor B(Shape({3}), {2, 4, 3});
  EXPECT_DOUBLE_EQ(tops::maximum(A, B).at(0), 2.0);
  EXPECT_DOUBLE_EQ(tops::minimum(A, B).at(1), 4.0);
  Tensor L = tops::less(A, B);
  EXPECT_EQ(L.getDType(), DType::Bool);
  EXPECT_DOUBLE_EQ(L.at(0), 1.0);
  EXPECT_DOUBLE_EQ(L.at(1), 0.0);
  EXPECT_DOUBLE_EQ(L.at(2), 0.0);
}

TEST(TensorOpsTest, WhereSelectsByMask) {
  Tensor Cond(Shape({3}), {1, 0, 1}, DType::Bool);
  Tensor A(Shape({3}), {10, 20, 30});
  Tensor B(Shape({3}), {-1, -2, -3});
  Tensor W = tops::where(Cond, A, B);
  EXPECT_DOUBLE_EQ(W.at(0), 10.0);
  EXPECT_DOUBLE_EQ(W.at(1), -2.0);
  EXPECT_DOUBLE_EQ(W.at(2), 30.0);
}

TEST(TensorOpsTest, TriuTril) {
  Tensor A = makeIota({3, 3});
  Tensor U = tops::triu(A);
  Tensor L = tops::tril(A);
  EXPECT_DOUBLE_EQ(U.at({1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(U.at({0, 1}), A.at({0, 1}));
  EXPECT_DOUBLE_EQ(L.at({0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(L.at({1, 0}), A.at({1, 0}));
  // Diagonal survives in both.
  EXPECT_DOUBLE_EQ(U.at({1, 1}), A.at({1, 1}));
  EXPECT_DOUBLE_EQ(L.at({1, 1}), A.at({1, 1}));
}

//===----------------------------------------------------------------------===//
// Linear algebra
//===----------------------------------------------------------------------===//

TEST(TensorOpsTest, DotInnerProduct) {
  Tensor A(Shape({3}), {1, 2, 3});
  Tensor B(Shape({3}), {4, 5, 6});
  Tensor C = tops::dot(A, B);
  EXPECT_TRUE(C.getShape().isScalar());
  EXPECT_DOUBLE_EQ(C.item(), 32.0);
}

TEST(TensorOpsTest, DotMatMul) {
  Tensor A(Shape({2, 2}), {1, 2, 3, 4});
  Tensor B(Shape({2, 2}), {5, 6, 7, 8});
  Tensor C = tops::dot(A, B);
  EXPECT_DOUBLE_EQ(C.at({0, 0}), 19.0);
  EXPECT_DOUBLE_EQ(C.at({0, 1}), 22.0);
  EXPECT_DOUBLE_EQ(C.at({1, 0}), 43.0);
  EXPECT_DOUBLE_EQ(C.at({1, 1}), 50.0);
}

TEST(TensorOpsTest, DotMatVec) {
  Tensor A(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor X(Shape({3}), {1, 0, -1});
  Tensor C = tops::dot(A, X);
  EXPECT_EQ(C.getShape(), Shape({2}));
  EXPECT_DOUBLE_EQ(C.at(0), -2.0);
  EXPECT_DOUBLE_EQ(C.at(1), -2.0);
}

TEST(TensorOpsTest, DotVecMat) {
  Tensor X(Shape({2}), {1, 2});
  Tensor A(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor C = tops::dot(X, A);
  EXPECT_EQ(C.getShape(), Shape({3}));
  EXPECT_DOUBLE_EQ(C.at(0), 9.0);
  EXPECT_DOUBLE_EQ(C.at(2), 15.0);
}

TEST(TensorOpsTest, DotScalarMultiplies) {
  Tensor A = makeIota({2, 2});
  Tensor C = tops::dot(Tensor::scalar(3.0), A);
  EXPECT_DOUBLE_EQ(C.at({1, 1}), 12.0);
}

TEST(TensorOpsTest, DotHigherRankMatchesNumPyRule) {
  // (r, q, 1, p) . (p, m) -> (r, q, 1, m)
  Tensor A = makeIota({2, 3, 1, 4});
  Tensor B = makeIota({4, 2});
  Tensor C = tops::dot(A, B);
  EXPECT_EQ(C.getShape(), Shape({2, 3, 1, 2}));
  // Check one element by hand: C[0,0,0,0] = sum_k A[0,0,0,k] * B[k,0].
  double Expected = 0;
  for (int64_t K = 0; K < 4; ++K)
    Expected += A.at({0, 0, 0, K}) * B.at({K, 0});
  EXPECT_DOUBLE_EQ(C.at({0, 0, 0, 0}), Expected);
}

TEST(TensorOpsTest, TensordotMatMulEquivalence) {
  Tensor A = makeIota({2, 3});
  Tensor B = makeIota({3, 4});
  Tensor ViaDot = tops::dot(A, B);
  Tensor ViaTD = tops::tensordot(A, B, {1}, {0});
  EXPECT_TRUE(ViaDot.allClose(ViaTD));
}

TEST(TensorOpsTest, TensordotDoubleContraction) {
  Tensor A = makeIota({2, 3});
  Tensor B = makeIota({2, 3});
  Tensor C = tops::tensordot(A, B, {0, 1}, {0, 1});
  // Full contraction equals sum of elementwise product.
  Tensor Expected = tops::sumAll(tops::multiply(A, B));
  EXPECT_TRUE(C.allClose(Expected));
}

TEST(TensorOpsTest, DiagAndTrace) {
  Tensor A = makeIota({3, 3});
  Tensor D = tops::diag(A);
  EXPECT_EQ(D.getShape(), Shape({3}));
  EXPECT_DOUBLE_EQ(D.at(0), 1.0);
  EXPECT_DOUBLE_EQ(D.at(2), 9.0);
  EXPECT_DOUBLE_EQ(tops::trace(A).item(), 15.0);
}

TEST(TensorOpsTest, DiagOfDotEqualsSumOfMulTranspose) {
  // The paper's headline identity: diag(A @ B) == sum(A * B^T, axis=1).
  RNG R(11);
  Tensor A(Shape({4, 4})), B(Shape({4, 4}));
  for (int64_t I = 0; I < 16; ++I) {
    A.at(I) = R.uniform(-2, 2);
    B.at(I) = R.uniform(-2, 2);
  }
  Tensor Lhs = tops::diag(tops::dot(A, B));
  Tensor Rhs = tops::sum(tops::multiply(A, tops::transpose(B)), 1);
  EXPECT_TRUE(Lhs.allClose(Rhs));
}

//===----------------------------------------------------------------------===//
// Shape manipulation and reductions
//===----------------------------------------------------------------------===//

TEST(TensorOpsTest, TransposeDefaultReverses) {
  Tensor A = makeIota({2, 3});
  Tensor T = tops::transpose(A);
  EXPECT_EQ(T.getShape(), Shape({3, 2}));
  EXPECT_DOUBLE_EQ(T.at({2, 1}), A.at({1, 2}));
}

TEST(TensorOpsTest, TransposeWithPermutation) {
  Tensor A = makeIota({2, 3, 4});
  Tensor T = tops::transpose(A, {1, 2, 0});
  EXPECT_EQ(T.getShape(), Shape({3, 4, 2}));
  EXPECT_DOUBLE_EQ(T.at({2, 3, 1}), A.at({1, 2, 3}));
}

TEST(TensorOpsTest, DoubleTransposeIsIdentity) {
  Tensor A = makeIota({3, 5});
  EXPECT_TRUE(tops::transpose(tops::transpose(A)).allClose(A));
}

TEST(TensorOpsTest, ReshapePreservesData) {
  Tensor A = makeIota({2, 6});
  Tensor B = tops::reshape(A, Shape({3, 4}));
  EXPECT_EQ(B.getShape(), Shape({3, 4}));
  for (int64_t I = 0; I < 12; ++I)
    EXPECT_DOUBLE_EQ(B.at(I), A.at(I));
}

TEST(TensorOpsTest, StackAxisZero) {
  Tensor A = makeIota({2});
  Tensor B = makeIota({2}, 10.0);
  Tensor S = tops::stack({A, B}, 0);
  EXPECT_EQ(S.getShape(), Shape({2, 2}));
  EXPECT_DOUBLE_EQ(S.at({0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(S.at({1, 0}), 10.0);
}

TEST(TensorOpsTest, StackInnerAxis) {
  Tensor A = makeIota({2});
  Tensor B = makeIota({2}, 10.0);
  Tensor S = tops::stack({A, B}, 1);
  EXPECT_EQ(S.getShape(), Shape({2, 2}));
  EXPECT_DOUBLE_EQ(S.at({0, 1}), 10.0);
  EXPECT_DOUBLE_EQ(S.at({1, 0}), 2.0);
}

TEST(TensorOpsTest, SumReductions) {
  Tensor A = makeIota({2, 3});
  EXPECT_DOUBLE_EQ(tops::sumAll(A).item(), 21.0);
  Tensor S0 = tops::sum(A, 0);
  EXPECT_EQ(S0.getShape(), Shape({3}));
  EXPECT_DOUBLE_EQ(S0.at(0), 5.0);
  Tensor S1 = tops::sum(A, -1);
  EXPECT_EQ(S1.getShape(), Shape({2}));
  EXPECT_DOUBLE_EQ(S1.at(1), 15.0);
}

TEST(TensorOpsTest, MaxReductions) {
  Tensor A(Shape({2, 2}), {4, -1, 0, 9});
  EXPECT_DOUBLE_EQ(tops::maxAll(A).item(), 9.0);
  Tensor M0 = tops::max(A, 0);
  EXPECT_DOUBLE_EQ(M0.at(0), 4.0);
  EXPECT_DOUBLE_EQ(M0.at(1), 9.0);
}

TEST(TensorTest, AllCloseDetectsMismatch) {
  Tensor A = makeIota({2, 2});
  Tensor B = makeIota({2, 2});
  EXPECT_TRUE(A.allClose(B));
  B.at(3) += 1e-3;
  EXPECT_FALSE(A.allClose(B));
  EXPECT_FALSE(A.allClose(makeIota({4})));
}

TEST(TensorTest, FullAndScalar) {
  Tensor F = Tensor::full(Shape({2, 2}), 7.5);
  EXPECT_DOUBLE_EQ(F.at(3), 7.5);
  EXPECT_DOUBLE_EQ(Tensor::scalar(3.0).item(), 3.0);
}

//===----------------------------------------------------------------------===//
// Fatal-error paths (death tests)
//===----------------------------------------------------------------------===//

TEST(TensorDeathTest, BroadcastMismatchAborts) {
  Tensor A(Shape({3})), B(Shape({4}));
  EXPECT_DEATH(tops::add(A, B), "not broadcastable");
}

TEST(TensorDeathTest, DotContractionMismatchAborts) {
  Tensor A(Shape({2, 3})), B(Shape({4, 2}));
  EXPECT_DEATH(tops::dot(A, B), "contracted extents differ");
}

TEST(TensorDeathTest, TriuOnVectorAborts) {
  Tensor A(Shape({4}));
  EXPECT_DEATH(tops::triu(A), "rank-2");
}

TEST(TensorDeathTest, ReshapeElementMismatchAborts) {
  Tensor A(Shape({2, 3}));
  EXPECT_DEATH(tops::reshape(A, Shape({5})), "changes element count");
}

TEST(TensorDeathTest, StackEmptyAborts) {
  std::vector<Tensor> None;
  EXPECT_DEATH(tops::stack(None), "zero tensors");
}

TEST(TensorDeathTest, AxisOutOfRangeAborts) {
  Tensor A(Shape({2, 3}));
  EXPECT_DEATH(tops::sum(A, 5), "out of range");
}
