//===- VerifyTest.cpp - Tests for the equivalence checker ------------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "verify/Equivalence.h"

#include "dsl/Parser.h"

#include <gtest/gtest.h>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::verify;

namespace {

TensorType f64(std::initializer_list<int64_t> Dims) {
  return TensorType{DType::Float64, Shape(Dims)};
}

Verdict check(const std::string &A, const std::string &B,
              const InputDecls &Decls, Options Opts = Options()) {
  auto PA = parseProgram(A, Decls);
  auto PB = parseProgram(B, Decls);
  EXPECT_TRUE(PA && PB) << PA.Error << PB.Error;
  Expected<Verdict> V = checkEquivalence(*PA.Prog, *PB.Prog, Opts);
  EXPECT_TRUE(V.hasValue()) << (V ? "" : V.error().toString());
  return V ? *V : Verdict::Incomparable;
}

} // namespace

TEST(VerifyTest, ProvesAlgebraicIdentities) {
  InputDecls Decls = {{"A", f64({3, 3})}, {"B", f64({3, 3})}};
  EXPECT_EQ(check("np.diag(np.dot(A, B))", "np.sum(A * B.T, axis=1)", Decls),
            Verdict::ProvenEquivalent);
  EXPECT_EQ(check("np.exp(np.log(A))", "A", Decls),
            Verdict::ProvenEquivalent);
  EXPECT_EQ(check("A * B + A * B", "2 * A * B", Decls),
            Verdict::ProvenEquivalent);
}

TEST(VerifyTest, RefutesWithCounterexamples) {
  InputDecls Decls = {{"A", f64({4})}, {"B", f64({4})}};
  EXPECT_EQ(check("A + B", "A * B", Decls), Verdict::NotEquivalent);
  EXPECT_EQ(check("A - B", "B - A", Decls), Verdict::NotEquivalent);
}

TEST(VerifyTest, RandomOnlyModeDowngradesToProbable) {
  InputDecls Decls = {{"A", f64({4})}};
  Options Opts;
  Opts.RandomOnly = true;
  EXPECT_EQ(check("np.power(A, 2)", "A * A", Decls, Opts),
            Verdict::ProbablyEquivalent);
}

TEST(VerifyTest, IncomparableOnTypeMismatch) {
  // Different output shapes.
  InputDecls Decls = {{"A", f64({3, 4})}};
  EXPECT_EQ(check("np.sum(A, axis=0)", "np.sum(A, axis=1)", Decls),
            Verdict::Incomparable);
}

TEST(VerifyTest, DisjointInputsAreAllowed) {
  // B appears only on one side; it is simply ignored by the other.
  auto PA = parseProgram("A + 0 * B", {{"A", f64({4})}, {"B", f64({4})}});
  auto PB = parseProgram("A", {{"A", f64({4})}});
  ASSERT_TRUE(PA && PB);
  EXPECT_EQ(*checkEquivalence(*PA.Prog, *PB.Prog),
            Verdict::ProvenEquivalent);
}

TEST(VerifyTest, ConflictingInputTypesAreIncomparable) {
  auto PA = parseProgram("A", {{"A", f64({4})}});
  auto PB = parseProgram("A + A", {{"A", f64({2, 2})}});
  ASSERT_TRUE(PA && PB);
  EXPECT_EQ(*checkEquivalence(*PA.Prog, *PB.Prog), Verdict::Incomparable);
}

TEST(VerifyTest, ComprehensionEquivalence) {
  InputDecls Decls = {{"A", f64({4})}, {"x", f64({})}, {"y", f64({})}};
  EXPECT_EQ(check("np.stack([(x*a + (1 - a)*y) for a in A])",
                  "x*A + (1 - A)*y", Decls),
            Verdict::ProvenEquivalent);
}
