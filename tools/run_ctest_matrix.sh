#!/usr/bin/env bash
#===- tools/run_ctest_matrix.sh - Build + ctest across sanitizer configs -===#
#
# Part of the STENSO reproduction, released under the MIT License.
#
#===----------------------------------------------------------------------===#
#
# The CI job matrix in one script: configures, builds, and tests the tree
# in five configurations —
#
#   release   plain RelWithDebInfo, full ctest suite
#   asan      STENSO_SANITIZE=ON (ASan+UBSan), full ctest suite
#   tsan      STENSO_TSAN=ON (ThreadSanitizer), `ctest -L tsan` only:
#             the parallel-search surface (ThreadPool, the shared-state
#             hammers, the parallel differential/robustness cases), since
#             TSan slows the full suite ~10x for no extra race coverage
#   lint      clang-tidy over the tree with the checks in .clang-tidy
#             (configure-only: uses CMAKE_EXPORT_COMPILE_COMMANDS); the
#             leg SKIPs — it does not fail — on hosts without clang-tidy
#   bench-regression
#             runs the observability bench binaries in the release tree
#             and gates their BENCH_*.json against the checked-in
#             baselines with tools/check_bench_regression.sh (SKIPs on
#             hosts without python3)
#
# Usage:
#   tools/run_ctest_matrix.sh             # all five configurations
#   tools/run_ctest_matrix.sh tsan        # just one
#                                         # (release|asan|tsan|lint|
#                                         #  bench-regression)
#
# Each configuration builds into build-matrix-<name>/ so the matrix never
# dirties the default build/ tree.  The script stops at the first failing
# configuration and always prints a per-config summary line.
#
#===----------------------------------------------------------------------===#

set -u

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
CONFIGS=("${@:-release asan tsan lint bench-regression}")
# Word-split the default list when no argument was given.
[ $# -eq 0 ] && CONFIGS=(release asan tsan lint bench-regression)

# clang-tidy over every first-party translation unit, against a
# configure-only build tree's compile_commands.json.  Returns 77 (the
# suite's skip convention) when clang-tidy is not installed.
run_lint() {
  local TIDY
  TIDY="$(command -v clang-tidy || true)"
  if [ -z "${TIDY}" ]; then
    echo "=== [lint] clang-tidy not installed; skipping ==="
    return 77
  fi
  local BUILD_DIR="build-matrix-lint"
  echo "=== [lint] configure (compile_commands.json) ==="
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON || return 1
  local FILES
  FILES="$(git ls-files 'src/*.cpp' 'src/**/*.cpp' 'tools/*.cpp' \
                        'bench/*.cpp' 'tests/*.cpp')"
  [ -n "${FILES}" ] || { echo "no sources found" >&2; return 1; }
  echo "=== [lint] clang-tidy (${JOBS} jobs) ==="
  # xargs fans files out across cores; -quiet keeps output to findings.
  echo "${FILES}" | xargs -P "${JOBS}" -n 8 \
      "${TIDY}" -p "${BUILD_DIR}" -quiet || return 1

  # Strict pass over the analysis + synthesis layers: the bugprone-* and
  # performance-* families promoted to errors.  These are the hot,
  # correctness-critical directories (the admissible bound must never
  # silently truncate or copy its way into a wrong floor); the rest of
  # the tree stays on the advisory default above.
  local STRICT_FILES
  STRICT_FILES="$(git ls-files 'src/analysis/*.cpp' 'src/synth/*.cpp')"
  [ -n "${STRICT_FILES}" ] || { echo "no strict sources found" >&2
                                return 1; }
  echo "=== [lint] clang-tidy strict (bugprone-*,performance-* as" \
       "errors: src/analysis src/synth) ==="
  echo "${STRICT_FILES}" | xargs -P "${JOBS}" -n 4 \
      "${TIDY}" -p "${BUILD_DIR}" -quiet \
      -checks='bugprone-*,performance-*,-bugprone-easily-swappable-parameters,-bugprone-branch-clone' \
      -warnings-as-errors='bugprone-*,performance-*' || return 1
}

# The perf-regression gate: run the contract-carrying benches in the
# release matrix tree (reusing it when the release leg already built it)
# and compare the fresh BENCH_*.json against the checked-in baselines.
# Beyond the observability pair this covers the differential benches:
# analysis pruning, the persistent store, and the cost-bound
# branch-and-bound floor — each embeds a result-identity contract the
# gate enforces.  check_bench_regression.sh returns 77 when python3 is
# missing; that propagates as a SKIP.
run_bench_regression() {
  local BUILD_DIR="build-matrix-release"
  local TARGETS=(bench_observe_overhead bench_report bench_analysis_pruning
                 bench_persist bench_cost_bound)
  echo "=== [bench-regression] configure + build ==="
  cmake -B "${BUILD_DIR}" -S . || return 1
  cmake --build "${BUILD_DIR}" -j "${JOBS}" --target "${TARGETS[@]}" \
      || return 1
  echo "=== [bench-regression] run benches ==="
  local BIN
  for BIN in "${TARGETS[@]}"; do
    (cd "${BUILD_DIR}/bench" && "./${BIN}") || return 1
  done
  echo "=== [bench-regression] compare against baselines ==="
  tools/check_bench_regression.sh --fresh-dir "${BUILD_DIR}/bench" \
      BENCH_observe BENCH_report BENCH_analysis_pruning BENCH_persist \
      BENCH_cost_bound
}

run_config() {
  local NAME="$1"
  local BUILD_DIR="build-matrix-${NAME}"
  local CMAKE_FLAGS=()
  local CTEST_FLAGS=(--output-on-failure)
  case "${NAME}" in
    release) ;;
    asan) CMAKE_FLAGS+=(-DSTENSO_SANITIZE=ON) ;;
    tsan)
      CMAKE_FLAGS+=(-DSTENSO_TSAN=ON)
      CTEST_FLAGS+=(-L tsan)
      ;;
    *)
      echo "unknown configuration '${NAME}' (use release|asan|tsan)" >&2
      return 2
      ;;
  esac

  echo "=== [${NAME}] configure ==="
  cmake -B "${BUILD_DIR}" -S . "${CMAKE_FLAGS[@]}" || return 1
  echo "=== [${NAME}] build (-j${JOBS}) ==="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" || return 1
  echo "=== [${NAME}] ctest ${CTEST_FLAGS[*]} ==="
  (cd "${BUILD_DIR}" && ctest "${CTEST_FLAGS[@]}") || return 1

  # Trace-validation leg: one traced end-to-end run per configuration,
  # with the emitted Chrome/Perfetto JSON checked by validate_trace.sh
  # (exit 77 = no python3 on this host; treated as a skip, not a failure).
  echo "=== [${NAME}] trace validation ==="
  local TRACE_FILE="${BUILD_DIR}/matrix_trace.json"
  "${BUILD_DIR}/tools/stenso-opt" \
      --program examples/programs/diag_dot.stenso --timeout 60 \
      --trace "${TRACE_FILE}" || return 1
  tools/validate_trace.sh "${TRACE_FILE}"
  local RC=$?
  if [ "${RC}" -ne 0 ] && [ "${RC}" -ne 77 ]; then
    return 1
  fi

  # Fuzz-smoke leg (release + asan; under ASan the whole differential
  # stack runs instrumented, which is where a fuzz-found memory bug
  # would surface): a fixed-seed, ~30s-budget coverage-guided run over
  # the full oracle stack must finish with zero findings.  No wall-clock
  # timeout — the deterministic node/solver caps bound each evaluation,
  # so the leg is bit-reproducible across hosts.
  if [ "${NAME}" != "tsan" ]; then
    echo "=== [${NAME}] fuzz smoke ==="
    "${BUILD_DIR}/tools/stenso-fuzz" \
        --seed 1 --budget 12 --timeout 0 \
        --corpus tests/fuzz_corpus || return 1
  fi

  # Store crash-recovery leg (release + asan; the tsan config covers the
  # store through `ctest -L tsan` instead): SIGKILL a store-backed run
  # mid-search, resume against the same store, and require the resumed
  # run to complete with the byte-identical program of a store-less
  # reference run.
  if [ "${NAME}" != "tsan" ]; then
    echo "=== [${NAME}] store crash recovery ==="
    local STORE_DIR="${BUILD_DIR}/matrix.stenso-cache"
    local REF_OUT="${BUILD_DIR}/matrix_ref.out"
    local RES_OUT="${BUILD_DIR}/matrix_resume.out"
    rm -rf "${STORE_DIR}"
    "${BUILD_DIR}/tools/stenso-opt" \
        --program examples/programs/diag_dot.stenso \
        --cost_estimator flops --timeout 600 --no-store \
        > "${REF_OUT}" || return 1
    "${BUILD_DIR}/tools/stenso-opt" \
        --program examples/programs/diag_dot.stenso \
        --cost_estimator flops --timeout 600 --store "${STORE_DIR}" \
        > /dev/null 2>&1 &
    local OPT_PID=$!
    sleep 2
    kill -9 "${OPT_PID}" 2>/dev/null
    wait "${OPT_PID}" 2>/dev/null
    "${BUILD_DIR}/tools/stenso-opt" \
        --program examples/programs/diag_dot.stenso \
        --cost_estimator flops --timeout 600 --store "${STORE_DIR}" \
        > "${RES_OUT}" || return 1
    rm -rf "${STORE_DIR}"
    if ! cmp -s "${REF_OUT}" "${RES_OUT}"; then
      echo "store crash recovery: resumed result diverged" >&2
      return 1
    fi
  fi
}

STATUS=0
SUMMARY=""
for NAME in "${CONFIGS[@]}"; do
  if [ "${NAME}" = "lint" ]; then
    run_lint
    RC=$?
    if [ "${RC}" -eq 0 ]; then
      SUMMARY+="lint: PASS"$'\n'
    elif [ "${RC}" -eq 77 ]; then
      SUMMARY+="lint: SKIP (clang-tidy not installed)"$'\n'
    else
      SUMMARY+="lint: FAIL"$'\n'
      STATUS=1
      break
    fi
    continue
  fi
  if [ "${NAME}" = "bench-regression" ]; then
    run_bench_regression
    RC=$?
    if [ "${RC}" -eq 0 ]; then
      SUMMARY+="bench-regression: PASS"$'\n'
    elif [ "${RC}" -eq 77 ]; then
      SUMMARY+="bench-regression: SKIP (python3 not installed)"$'\n'
    else
      SUMMARY+="bench-regression: FAIL"$'\n'
      STATUS=1
      break
    fi
    continue
  fi
  if run_config "${NAME}"; then
    SUMMARY+="${NAME}: PASS"$'\n'
  else
    SUMMARY+="${NAME}: FAIL"$'\n'
    STATUS=1
    break
  fi
done

echo
echo "=== matrix summary ==="
printf '%s' "${SUMMARY}"
exit "${STATUS}"
