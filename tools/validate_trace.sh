#!/usr/bin/env bash
#===- tools/validate_trace.sh - Telemetry stream schema validation -------===#
#
# Part of the STENSO reproduction, released under the MIT License.
#
#===----------------------------------------------------------------------===#
#
# Validates the engine's telemetry streams:
#
#   * `--trace` output as loadable Chrome/Perfetto `trace_event` JSON:
#     the file parses (python3's strict json module), the top level is an
#     object with a "traceEvents" array, and every event carries the
#     required keys (name/cat/ph/ts/pid/tid), a known phase, and a
#     duration on complete ('X') events.
#   * `--decisions` JSONL (optional, --decisions FILE): one object per
#     line with seq/sketch/depth/bound/outcome, a known outcome enum,
#     and strictly increasing seq.
#   * `--progress` JSONL (optional, --progress FILE): one object per
#     line with seq/elapsed/candidates, strictly increasing seq,
#     non-decreasing elapsed, and "final": true on the last record only.
#
# Usage: tools/validate_trace.sh TRACE.json [--decisions FILE]
#                                           [--progress FILE]
#
# Exit codes: 0 valid, 1 invalid, 77 skipped (no python3 on this host —
# the JSON writers are covered by ObserveTest's validator in that case).
#
#===----------------------------------------------------------------------===#

set -u

if [ $# -lt 1 ]; then
  echo "usage: $0 TRACE.json [--decisions FILE] [--progress FILE]" >&2
  exit 1
fi
TRACE="$1"
shift
DECISIONS=""
PROGRESS=""
while [ $# -gt 0 ]; do
  case "$1" in
    --decisions)
      DECISIONS="${2:-}"
      shift 2 || { echo "validate_trace: --decisions needs a file" >&2; exit 1; }
      ;;
    --progress)
      PROGRESS="${2:-}"
      shift 2 || { echo "validate_trace: --progress needs a file" >&2; exit 1; }
      ;;
    *)
      echo "validate_trace: unknown option: $1" >&2
      exit 1
      ;;
  esac
done

for F in "${TRACE}" ${DECISIONS:+"${DECISIONS}"} ${PROGRESS:+"${PROGRESS}"}; do
  if [ ! -f "${F}" ]; then
    echo "validate_trace: no such file: ${F}" >&2
    exit 1
  fi
done

if ! command -v python3 >/dev/null 2>&1; then
  echo "validate_trace: python3 not available, skipping validation" >&2
  exit 77
fi

python3 - "${TRACE}" "${DECISIONS}" "${PROGRESS}" <<'EOF'
import json
import sys

path = sys.argv[1]
decisions_path = sys.argv[2]
progress_path = sys.argv[3]

try:
    with open(path) as f:
        trace = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"validate_trace: {path}: not parseable JSON: {e}")

if not isinstance(trace, dict):
    sys.exit(f"validate_trace: {path}: top level is not an object")
events = trace.get("traceEvents")
if not isinstance(events, list):
    sys.exit(f"validate_trace: {path}: missing 'traceEvents' array")

required = ("name", "cat", "ph", "ts", "pid", "tid")
known_phases = {"X", "i", "B", "E", "C", "M"}
for i, ev in enumerate(events):
    if not isinstance(ev, dict):
        sys.exit(f"validate_trace: {path}: event {i} is not an object")
    for key in required:
        if key not in ev:
            sys.exit(f"validate_trace: {path}: event {i} lacks '{key}'")
    if ev["ph"] not in known_phases:
        sys.exit(f"validate_trace: {path}: event {i} has unknown phase "
                 f"{ev['ph']!r}")
    if ev["ph"] == "X" and "dur" not in ev:
        sys.exit(f"validate_trace: {path}: complete event {i} lacks 'dur'")
    if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
        sys.exit(f"validate_trace: {path}: event {i} has bad ts")
    args = ev.get("args")
    if args is not None and not isinstance(args, dict):
        sys.exit(f"validate_trace: {path}: event {i} has non-object args")

other = trace.get("otherData", {})
print(f"validate_trace: {path}: OK — {len(events)} event(s), "
      f"{other.get('threads', '?')} thread(s), "
      f"{other.get('droppedEvents', '?')} dropped")


def load_jsonl(p):
    """One JSON object per non-empty line, with line numbers for errors."""
    records = []
    with open(p) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as e:
                sys.exit(f"validate_trace: {p}: line {lineno}: "
                         f"not parseable JSON: {e}")
            if not isinstance(rec, dict):
                sys.exit(f"validate_trace: {p}: line {lineno}: "
                         f"record is not an object")
            records.append((lineno, rec))
    return records


if decisions_path:
    known_outcomes = {
        "stub-match", "pruned-cost", "pruned-simplification",
        "pruned-error", "no-solution", "pruned-analysis", "budget-stop",
        "explored", "accepted", "store-degraded", "pruned-costbound",
    }
    prev_seq = None
    records = load_jsonl(decisions_path)
    for lineno, rec in records:
        for key in ("seq", "sketch", "depth", "bound", "outcome"):
            if key not in rec:
                sys.exit(f"validate_trace: {decisions_path}: line {lineno}: "
                         f"record lacks '{key}'")
        if rec["outcome"] not in known_outcomes:
            sys.exit(f"validate_trace: {decisions_path}: line {lineno}: "
                     f"unknown outcome {rec['outcome']!r}")
        seq = rec["seq"]
        if not isinstance(seq, int) or seq < 0:
            sys.exit(f"validate_trace: {decisions_path}: line {lineno}: "
                     f"bad seq {seq!r}")
        if prev_seq is not None and seq <= prev_seq:
            sys.exit(f"validate_trace: {decisions_path}: line {lineno}: "
                     f"seq not strictly increasing ({prev_seq} -> {seq})")
        prev_seq = seq
    print(f"validate_trace: {decisions_path}: OK — "
          f"{len(records)} decision(s)")

if progress_path:
    prev_seq = None
    prev_elapsed = None
    records = load_jsonl(progress_path)
    for i, (lineno, rec) in enumerate(records):
        for key in ("seq", "elapsed", "candidates"):
            if key not in rec:
                sys.exit(f"validate_trace: {progress_path}: line {lineno}: "
                         f"record lacks '{key}'")
        seq = rec["seq"]
        elapsed = rec["elapsed"]
        if not isinstance(seq, int) or seq < 0:
            sys.exit(f"validate_trace: {progress_path}: line {lineno}: "
                     f"bad seq {seq!r}")
        if not isinstance(elapsed, (int, float)) or elapsed < 0:
            sys.exit(f"validate_trace: {progress_path}: line {lineno}: "
                     f"bad elapsed {elapsed!r}")
        if prev_seq is not None and seq <= prev_seq:
            sys.exit(f"validate_trace: {progress_path}: line {lineno}: "
                     f"seq not strictly increasing ({prev_seq} -> {seq})")
        if prev_elapsed is not None and elapsed < prev_elapsed:
            sys.exit(f"validate_trace: {progress_path}: line {lineno}: "
                     f"elapsed went backwards "
                     f"({prev_elapsed} -> {elapsed})")
        is_last = i == len(records) - 1
        if rec.get("final", False) and not is_last:
            sys.exit(f"validate_trace: {progress_path}: line {lineno}: "
                     f"'final' on a non-last record")
        prev_seq = seq
        prev_elapsed = elapsed
    if records and not records[-1][1].get("final", False):
        sys.exit(f"validate_trace: {progress_path}: last record is not "
                 f"marked final")
    print(f"validate_trace: {progress_path}: OK — "
          f"{len(records)} heartbeat(s)")
EOF
