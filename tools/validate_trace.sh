#!/usr/bin/env bash
#===- tools/validate_trace.sh - Chrome/Perfetto trace file validation ----===#
#
# Part of the STENSO reproduction, released under the MIT License.
#
#===----------------------------------------------------------------------===#
#
# Validates a `--trace` output file as loadable Chrome/Perfetto
# `trace_event` JSON:
#
#   * the file parses as JSON (python3's strict json module);
#   * the top level is an object with a "traceEvents" array;
#   * every event carries the required keys (name/cat/ph/ts/pid/tid), a
#     known phase, and a duration on complete ('X') events.
#
# Usage: tools/validate_trace.sh TRACE.json
#
# Exit codes: 0 valid, 1 invalid, 77 skipped (no python3 on this host —
# the JSON writer is covered by ObserveTest's validator in that case).
#
#===----------------------------------------------------------------------===#

set -u

if [ $# -ne 1 ]; then
  echo "usage: $0 TRACE.json" >&2
  exit 1
fi
TRACE="$1"

if [ ! -f "${TRACE}" ]; then
  echo "validate_trace: no such file: ${TRACE}" >&2
  exit 1
fi

if ! command -v python3 >/dev/null 2>&1; then
  echo "validate_trace: python3 not available, skipping validation" >&2
  exit 77
fi

python3 - "${TRACE}" <<'EOF'
import json
import sys

path = sys.argv[1]
try:
    with open(path) as f:
        trace = json.load(f)
except (OSError, ValueError) as e:
    sys.exit(f"validate_trace: {path}: not parseable JSON: {e}")

if not isinstance(trace, dict):
    sys.exit(f"validate_trace: {path}: top level is not an object")
events = trace.get("traceEvents")
if not isinstance(events, list):
    sys.exit(f"validate_trace: {path}: missing 'traceEvents' array")

required = ("name", "cat", "ph", "ts", "pid", "tid")
known_phases = {"X", "i", "B", "E", "C", "M"}
for i, ev in enumerate(events):
    if not isinstance(ev, dict):
        sys.exit(f"validate_trace: {path}: event {i} is not an object")
    for key in required:
        if key not in ev:
            sys.exit(f"validate_trace: {path}: event {i} lacks '{key}'")
    if ev["ph"] not in known_phases:
        sys.exit(f"validate_trace: {path}: event {i} has unknown phase "
                 f"{ev['ph']!r}")
    if ev["ph"] == "X" and "dur" not in ev:
        sys.exit(f"validate_trace: {path}: complete event {i} lacks 'dur'")
    if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
        sys.exit(f"validate_trace: {path}: event {i} has bad ts")
    args = ev.get("args")
    if args is not None and not isinstance(args, dict):
        sys.exit(f"validate_trace: {path}: event {i} has non-object args")

other = trace.get("otherData", {})
print(f"validate_trace: {path}: OK — {len(events)} event(s), "
      f"{other.get('threads', '?')} thread(s), "
      f"{other.get('droppedEvents', '?')} dropped")
EOF
