#!/usr/bin/env bash
# Runs stenso-lint over the malformed-program corpus and asserts that
# every file (a) exits nonzero and (b) reports at least one *spanned*
# diagnostic (a "line:col:" location prefix), so regressions in either
# the checks or the parser's span tracking fail the suite.
#
# Corpus files may pin diagnostics with comment directives:
#   # lint-expect: REGEX   — the output must match REGEX (grep -E)
#   # lint-forbid: REGEX   — the output must NOT match REGEX
# Used by the interval-downgrade cases to assert a check fires as a
# note and no longer as a warning.
#
# Usage: check_lint_corpus.sh <stenso-lint-binary> <corpus-dir>
set -u

LINT="${1:?usage: check_lint_corpus.sh <stenso-lint-binary> <corpus-dir>}"
CORPUS="${2:?usage: check_lint_corpus.sh <stenso-lint-binary> <corpus-dir>}"

if [ ! -x "$LINT" ]; then
  echo "check_lint_corpus: '$LINT' is not executable" >&2
  exit 1
fi

shopt -s nullglob
FILES=("$CORPUS"/*.stenso)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "check_lint_corpus: no .stenso files under '$CORPUS'" >&2
  exit 1
fi

FAILURES=0
for FILE in "${FILES[@]}"; do
  OUT="$("$LINT" --program "$FILE" 2>&1)"
  STATUS=$?
  if [ "$STATUS" -eq 0 ]; then
    echo "FAIL $FILE: expected nonzero exit, got 0" >&2
    echo "$OUT" | sed 's/^/  | /' >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  if ! echo "$OUT" | grep -Eq '^[0-9]+:[0-9]+: (error|warning|note):'; then
    echo "FAIL $FILE: no spanned (line:col:) diagnostic in output" >&2
    echo "$OUT" | sed 's/^/  | /' >&2
    FAILURES=$((FAILURES + 1))
    continue
  fi
  DIRECTIVE_FAIL=0
  while IFS= read -r RE; do
    if ! echo "$OUT" | grep -Eq "$RE"; then
      echo "FAIL $FILE: no diagnostic matching lint-expect '$RE'" >&2
      echo "$OUT" | sed 's/^/  | /' >&2
      DIRECTIVE_FAIL=1
    fi
  done < <(sed -n 's/^# lint-expect: //p' "$FILE")
  while IFS= read -r RE; do
    if echo "$OUT" | grep -Eq "$RE"; then
      echo "FAIL $FILE: diagnostic matches lint-forbid '$RE'" >&2
      echo "$OUT" | sed 's/^/  | /' >&2
      DIRECTIVE_FAIL=1
    fi
  done < <(sed -n 's/^# lint-forbid: //p' "$FILE")
  if [ "$DIRECTIVE_FAIL" -ne 0 ]; then
    FAILURES=$((FAILURES + 1))
    continue
  fi
  echo "ok $FILE (exit $STATUS)"
done

if [ "$FAILURES" -ne 0 ]; then
  echo "check_lint_corpus: $FAILURES file(s) failed" >&2
  exit 1
fi
echo "check_lint_corpus: all ${#FILES[@]} corpus files diagnosed with spans"
