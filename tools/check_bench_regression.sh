#!/usr/bin/env bash
#===- tools/check_bench_regression.sh - Gate fresh BENCH_*.json ----------===#
#
# Part of the STENSO reproduction, released under the MIT License.
#
#===----------------------------------------------------------------------===#
#
# Compares freshly produced BENCH_*.json files against the checked-in
# baselines at the repo root, metric by metric, and prints a pass/warn/
# fail table.
#
# Three kinds of metric, with different strictness:
#
#   contract   deterministic correctness facts (cross-checks pass,
#              differential mismatches are zero, the monitored run
#              returned the identical result).  A violation FAILs:
#              these do not move with host load.
#   budget     the policy booleans the bench binaries compute
#              (inactive-span overhead <= 5%, heartbeat overhead <= 2%).
#              A violation WARNs: the budgets hold on a quiet host, but
#              this gate shares CI machines with sanitizer jobs.
#   perf       timings and throughputs, compared to the baseline value
#              with generous relative tolerances (hosts differ): drift
#              past the warn ratio WARNs, past the fail ratio FAILs.
#
# Usage:
#   tools/check_bench_regression.sh [--fresh-dir DIR] [--baseline-dir DIR]
#                                   [BENCH_observe] [BENCH_report] ...
#
#   --fresh-dir     where the just-run bench binaries wrote their JSON
#                   (default: build/bench)
#   --baseline-dir  where the checked-in baselines live (default: the
#                   repo root)
#
# With no bench names, every baseline that has a fresh counterpart is
# checked; a named bench whose fresh file is missing is an error.
# Exit: 0 all pass (warnings allowed), 1 any fail or usage error,
# 77 when python3 is unavailable (the suite's skip convention).
#
#===----------------------------------------------------------------------===#

set -u

cd "$(dirname "$0")/.."

if ! command -v python3 >/dev/null 2>&1; then
  echo "check_bench_regression: python3 not found; skipping" >&2
  exit 77
fi

FRESH_DIR="build/bench"
BASELINE_DIR="."
BENCHES=()
while [ $# -gt 0 ]; do
  case "$1" in
    --fresh-dir)
      FRESH_DIR="${2:?--fresh-dir needs a directory}"
      shift 2 || exit 1
      ;;
    --baseline-dir)
      BASELINE_DIR="${2:?--baseline-dir needs a directory}"
      shift 2 || exit 1
      ;;
    -*)
      echo "unknown option '$1'" >&2
      exit 1
      ;;
    *)
      BENCHES+=("$1")
      shift
      ;;
  esac
done

python3 - "$FRESH_DIR" "$BASELINE_DIR" "${BENCHES[@]:-}" <<'PYEOF'
import json
import sys

fresh_dir, baseline_dir = sys.argv[1], sys.argv[2]
requested = [b for b in sys.argv[3:] if b]

# Metric spec per bench file.  Dotted paths index into the JSON
# (integer segments index arrays).  Kinds:
#   contract  boolean that must be true / count that must be zero -> FAIL
#   budget    policy boolean -> WARN when false
#   time      lower is better; ratio fresh/baseline gates warn/fail
#   rate      higher is better; ratio baseline-relative, inverted gates
SPEC = {
    "BENCH_observe": [
        ("within_budget", "budget", None, None),
        ("overhead_inactive_percent", "time", 2.0, 5.0),
        ("ns_per_inactive_site", "time", 2.0, 5.0),
        ("ns_per_event_active", "time", 2.0, 5.0),
        ("ns_per_counter_add", "time", 2.0, 5.0),
    ],
    "BENCH_report": [
        ("synthetic_cross_check_ok", "contract", None, None),
        ("live_cross_check_ok", "contract", None, None),
        ("observation_only_result_identical", "contract", None, None),
        ("heartbeat_within_budget", "budget", None, None),
        ("heartbeat_overhead_percent", "time", 2.5, 6.0),
        ("ingest_lines_per_second", "rate", 1.5, 3.0),
        ("build_seconds", "time", 1.5, 3.0),
    ],
    "BENCH_analysis_pruning": [
        ("runs.0.differential_mismatches", "contract", None, None),
        ("runs.1.differential_mismatches", "contract", None, None),
        ("runs.2.differential_mismatches", "contract", None, None),
        ("runs.3.differential_mismatches", "contract", None, None),
        ("coverage_ok", "contract", None, None),
        ("runs.2.wall_seconds", "time", 1.5, 3.0),
    ],
    "BENCH_parallel": [
        ("runs.0.differential_mismatches", "contract", None, None),
        ("runs.1.differential_mismatches", "contract", None, None),
        ("runs.2.differential_mismatches", "contract", None, None),
        ("runs.3.differential_mismatches", "contract", None, None),
        ("runs.0.wall_seconds", "time", 1.5, 3.0),
    ],
    "BENCH_persist": [
        ("differential_mismatches", "contract", None, None),
        ("cold_wall_seconds", "time", 1.5, 3.0),
        ("warm_wall_seconds", "time", 1.5, 3.0),
        ("recovery_seconds", "time", 2.0, 4.0),
    ],
    "BENCH_cost_bound": [
        ("differential_mismatches", "contract", None, None),
        ("sketches_cut_positive", "contract", None, None),
        ("solver_calls_avoided_positive", "contract", None, None),
        ("runs.2.wall_seconds", "time", 1.5, 3.0),
    ],
}


def load(path):
    with open(path) as f:
        return json.load(f)


def lookup(doc, dotted):
    node = doc
    for seg in dotted.split("."):
        if isinstance(node, list):
            node = node[int(seg)]
        elif isinstance(node, dict):
            if seg not in node:
                return None
            node = node[seg]
        else:
            return None
    return node


import os

if requested:
    names = requested
else:
    names = sorted(
        n for n in SPEC
        if os.path.exists(os.path.join(baseline_dir, n + ".json"))
        and os.path.exists(os.path.join(fresh_dir, n + ".json"))
    )
    if not names:
        print("check_bench_regression: no bench with both a baseline and "
              "a fresh file; nothing to check", file=sys.stderr)
        sys.exit(1)

rows = []
failed = False
for name in names:
    if name not in SPEC:
        print(f"check_bench_regression: no metric spec for '{name}'",
              file=sys.stderr)
        sys.exit(1)
    fresh_path = os.path.join(fresh_dir, name + ".json")
    base_path = os.path.join(baseline_dir, name + ".json")
    try:
        fresh = load(fresh_path)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: cannot read fresh {fresh_path}: {e}",
              file=sys.stderr)
        sys.exit(1)
    try:
        base = load(base_path)
    except (OSError, ValueError) as e:
        print(f"check_bench_regression: cannot read baseline {base_path}: "
              f"{e}", file=sys.stderr)
        sys.exit(1)

    for metric, kind, warn, fail in SPEC[name]:
        fv = lookup(fresh, metric)
        bv = lookup(base, metric)
        if fv is None:
            rows.append((name, metric, "FAIL", "missing in fresh output"))
            failed = True
            continue
        if kind == "contract":
            ok = fv is True if isinstance(fv, bool) else fv == 0
            if ok:
                rows.append((name, metric, "pass", f"{fv}"))
            else:
                rows.append((name, metric, "FAIL", f"contract violated: "
                                                   f"{fv}"))
                failed = True
        elif kind == "budget":
            if fv is True:
                rows.append((name, metric, "pass", "true"))
            else:
                rows.append((name, metric, "warn", "budget exceeded "
                                                   "(noisy host?)"))
        else:
            if bv is None or not isinstance(bv, (int, float)) or bv == 0:
                rows.append((name, metric, "warn",
                             f"no usable baseline ({bv!r}); fresh {fv:g}"))
                continue
            ratio = fv / bv if kind == "time" else bv / fv if fv else 1e9
            detail = f"{fv:g} vs baseline {bv:g} ({ratio:.2f}x)"
            if ratio > fail:
                rows.append((name, metric, "FAIL", detail))
                failed = True
            elif ratio > warn:
                rows.append((name, metric, "warn", detail))
            else:
                rows.append((name, metric, "pass", detail))

wb = max(len(r[0]) for r in rows)
wm = max(len(r[1]) for r in rows)
print(f"{'bench':<{wb}}  {'metric':<{wm}}  result  detail")
print("-" * (wb + wm + 40))
for bench, metric, status, detail in rows:
    print(f"{bench:<{wb}}  {metric:<{wm}}  {status:<6}  {detail}")

npass = sum(1 for r in rows if r[2] == "pass")
nwarn = sum(1 for r in rows if r[2] == "warn")
nfail = sum(1 for r in rows if r[2] == "FAIL")
print(f"\n{npass} pass, {nwarn} warn, {nfail} fail")
sys.exit(1 if failed else 0)
PYEOF
