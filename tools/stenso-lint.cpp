//===- stenso-lint.cpp - Static diagnostics driver -------------------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of the analysis layer's lint pass:
///
///   stenso-lint --program FILE [--json]
///
/// Parses the program file, runs the abstract-interpretation checks of
/// analysis/Lint.h, and prints compiler-style diagnostics with a caret
/// under the offending subexpression (or a JSON array with --json).
///
/// Exit status: 0 when the program is clean (notes only), 1 when any
/// warning fired, 2 on a parse/load error.  Parse errors are themselves
/// reported with the same line:column rendering, so every malformed file
/// produces a spanned diagnostic.
///
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "dsl/Parser.h"

#include "evalsuite/ProgramFile.h"

#include <iostream>
#include <string>

using namespace stenso;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: stenso-lint --program FILE [options]\n"
        "\n"
        "options:\n"
        "  --program FILE   source program to check (required)\n"
        "  --json           emit diagnostics as a JSON array on stdout\n"
        "\n"
        "exit status: 0 clean, 1 warnings found, 2 parse/load error\n";
}

int fail(const std::string &Message) {
  std::cerr << "error: " << Message << "\n";
  return 2;
}

/// Renders a parse error at its recorded position the way the lint
/// renderer does, so syntax errors also come with a source line + caret.
void printParseError(const std::string &Source, const dsl::ParseResult &R) {
  analysis::LintDiagnostic D;
  D.Severity = analysis::LintSeverity::Error;
  D.Check = "parse-error";
  D.Message = R.Error;
  if (R.ErrorOffset != std::string::npos)
    D.Span = dsl::SourceSpan{static_cast<int64_t>(R.ErrorOffset),
                             static_cast<int64_t>(R.ErrorOffset)};
  std::cerr << renderDiagnostic(Source, D);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ProgramPath;
  bool Json = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--program")
      ProgramPath = I + 1 < Argc ? Argv[++I] : "";
    else if (Arg == "--json")
      Json = true;
    else if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else {
      printUsage(std::cerr);
      return fail("unknown option '" + Arg + "'");
    }
  }
  if (ProgramPath.empty()) {
    printUsage(std::cerr);
    return fail("--program is required");
  }

  evalsuite::ProgramFile File;
  std::string Error;
  if (!loadProgramFile(ProgramPath, File, Error))
    return fail(Error);

  dsl::ParseResult Parsed = dsl::parseProgram(File.Source, File.Inputs);
  if (!Parsed) {
    printParseError(File.Source, Parsed);
    return 2;
  }

  std::vector<analysis::LintDiagnostic> Diags =
      analysis::lintProgram(*Parsed.Prog);

  if (Json) {
    std::cout << analysis::diagnosticsToJson(File.Source, Diags) << "\n";
  } else {
    for (const analysis::LintDiagnostic &D : Diags)
      std::cout << renderDiagnostic(File.Source, D);
  }

  int Warnings = 0, Notes = 0;
  for (const analysis::LintDiagnostic &D : Diags)
    (D.Severity == analysis::LintSeverity::Warning ? Warnings : Notes)++;
  std::cerr << ProgramPath << ": " << Warnings << " warning(s), " << Notes
            << " note(s)\n";
  return Warnings > 0 ? 1 : 0;
}
