//===- stenso-report.cpp - Post-hoc run introspection driver ---------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of observe/Report.h:
///
///   stenso-report [--stats F] [--decisions F] [--trace F]
///                 [--progress F] [--metrics F] [options]
///
/// Ingests whichever telemetry streams of a run are given and prints one
/// condensed report: outcome, per-phase wall time (per thread),
/// prune-reason breakdown, cache efficiency, the best-cost trajectory,
/// the most expensive losing candidates, and a cross-check that the
/// streams agree with each other.
///
/// Diff mode (any --diff-* stream given) builds a second report and
/// compares the two: determinism-contract fields exactly, everything
/// else against --rel-tol.
///
/// Exit status: 0 OK, 1 usage/read/parse error, 2 the diff diverged on
/// an outcome field, 3 the cross-check found a stream inconsistency
/// (only with --check; the report itself always prints the mismatches).
///
//===----------------------------------------------------------------------===//

#include "observe/Report.h"

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

using namespace stenso;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: stenso-report [streams] [options]\n"
        "\n"
        "streams of the run (each optional, at least one required):\n"
        "  --stats FILE          --stats-json output of stenso-opt\n"
        "  --decisions FILE      decision JSONL (--decisions)\n"
        "  --trace FILE          Chrome/Perfetto trace JSON (--trace)\n"
        "  --progress FILE       progress heartbeat JSONL (--progress)\n"
        "  --metrics FILE        metrics registry snapshot (--metrics)\n"
        "\n"
        "second run (presence of any switches to diff mode):\n"
        "  --diff-stats FILE --diff-decisions FILE --diff-trace FILE\n"
        "  --diff-progress FILE --diff-metrics FILE\n"
        "\n"
        "options:\n"
        "  --json                machine-readable output\n"
        "  --top K               losing-candidate rows (default 10)\n"
        "  --rel-tol T           metric drift tolerance in diff mode\n"
        "                        (default 0.05)\n"
        "  --check               exit 3 when the cross-check finds a\n"
        "                        stream inconsistency\n"
        "  --label NAME          label for run A (--diff-label for B)\n"
        "\n"
        "exit status: 0 ok, 1 error, 2 diff diverged, 3 cross-check "
        "failed (--check)\n";
}

int fail(const std::string &Message) {
  std::cerr << "error: " << Message << "\n";
  return 1;
}

bool parseDouble(const std::string &Text, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Text.c_str(), &End);
  return End && *End == '\0' && End != Text.c_str();
}

bool anyInput(const observe::ReportInputs &I) {
  return !I.StatsPath.empty() || !I.DecisionsPath.empty() ||
         !I.TracePath.empty() || !I.ProgressPath.empty() ||
         !I.MetricsPath.empty();
}

/// Label fallback: the first stream path given.
std::string defaultLabel(const observe::ReportInputs &I) {
  if (!I.StatsPath.empty())
    return I.StatsPath;
  if (!I.DecisionsPath.empty())
    return I.DecisionsPath;
  if (!I.TracePath.empty())
    return I.TracePath;
  if (!I.ProgressPath.empty())
    return I.ProgressPath;
  return I.MetricsPath;
}

} // namespace

int main(int Argc, char **Argv) {
  observe::ReportInputs RunA, RunB;
  observe::ReportOptions Opts;
  std::string LabelB;
  double RelTol = 0.05;
  bool Json = false;
  bool Check = false;

  auto NextArg = [&](int &I) -> std::string {
    return I + 1 < Argc ? Argv[++I] : "";
  };

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--stats")
      RunA.StatsPath = NextArg(I);
    else if (Arg == "--decisions")
      RunA.DecisionsPath = NextArg(I);
    else if (Arg == "--trace")
      RunA.TracePath = NextArg(I);
    else if (Arg == "--progress")
      RunA.ProgressPath = NextArg(I);
    else if (Arg == "--metrics")
      RunA.MetricsPath = NextArg(I);
    else if (Arg == "--diff-stats")
      RunB.StatsPath = NextArg(I);
    else if (Arg == "--diff-decisions")
      RunB.DecisionsPath = NextArg(I);
    else if (Arg == "--diff-trace")
      RunB.TracePath = NextArg(I);
    else if (Arg == "--diff-progress")
      RunB.ProgressPath = NextArg(I);
    else if (Arg == "--diff-metrics")
      RunB.MetricsPath = NextArg(I);
    else if (Arg == "--label")
      Opts.Label = NextArg(I);
    else if (Arg == "--diff-label")
      LabelB = NextArg(I);
    else if (Arg == "--json")
      Json = true;
    else if (Arg == "--check")
      Check = true;
    else if (Arg == "--top") {
      std::string V = NextArg(I);
      double D = 0;
      if (!parseDouble(V, D) || D < 0 || D > 10000 ||
          D != static_cast<int>(D))
        return fail("--top expects an integer in [0, 10000], got '" + V +
                    "'");
      Opts.TopK = static_cast<int>(D);
    } else if (Arg == "--rel-tol") {
      std::string V = NextArg(I);
      if (!parseDouble(V, RelTol) || RelTol < 0)
        return fail("--rel-tol expects a non-negative number, got '" + V +
                    "'");
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else {
      printUsage(std::cerr);
      return fail("unknown option '" + Arg + "'");
    }
  }

  if (!anyInput(RunA)) {
    printUsage(std::cerr);
    return fail("at least one input stream is required");
  }
  if (Opts.Label.empty())
    Opts.Label = defaultLabel(RunA);

  std::string Error;
  observe::RunReport A;
  if (!buildReport(RunA, Opts, A, Error))
    return fail(Error);

  if (anyInput(RunB)) {
    observe::ReportOptions OptsB = Opts;
    OptsB.Label = LabelB.empty() ? defaultLabel(RunB) : LabelB;
    observe::RunReport B;
    if (!buildReport(RunB, OptsB, B, Error))
      return fail(Error);
    observe::ReportDiff Diff = observe::diffReports(A, B, RelTol);
    if (Json)
      renderDiffJson(Diff, A, B, std::cout);
    else
      renderDiffText(Diff, A, B, std::cout);
    return Diff.diverged() ? 2 : 0;
  }

  if (Json)
    renderReportJson(A, std::cout);
  else
    renderReportText(A, std::cout);
  if (Check && !crossCheckReport(A).empty())
    return 3;
  return 0;
}
