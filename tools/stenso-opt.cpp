//===- stenso-opt.cpp - Command-line superoptimizer driver -----------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C++ counterpart of the paper artifact's `stenso/main.py`
/// (Appendix F):
///
///   stenso-opt --program original.stenso [--synth_out optimized.stenso]
///              [--cost_estimator flops|measured] [--timeout SECONDS]
///              [--stats] [--rule]
///
/// Program files declare their inputs and give one expression:
///
///   # comment lines start with '#'
///   input A f64[96,96]
///   input B f64[96,96]
///   np.diag(np.dot(A, B))
///
/// Shapes in `input` lines are the *search* shapes; an optional
/// `scale SMALL FULL` line maps a search extent to the production extent
/// for cost estimation (paper Section VI-C).
///
//===----------------------------------------------------------------------===//

#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "evalsuite/RewriteRuleMiner.h"
#include "evalsuite/RuleBook.h"
#include "observe/DecisionLog.h"
#include "observe/Json.h"
#include "observe/Metrics.h"
#include "observe/Progress.h"
#include "observe/Trace.h"
#include "persist/StensoStore.h"
#include "support/RNG.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "synth/Synthesizer.h"

#include "evalsuite/ProgramFile.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

using namespace stenso;
using namespace stenso::dsl;
using evalsuite::ProgramFile;
using evalsuite::loadProgramFile;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: stenso-opt --program FILE [options]\n"
        "\n"
        "options:\n"
        "  --program FILE          source program (required)\n"
        "  --synth_out FILE        write the optimized program here\n"
        "                          (default: print to stdout)\n"
        "  --cost_estimator NAME   flops | measured (default: measured)\n"
        "  --timeout SECONDS       synthesis budget (default: 60)\n"
        "  --max-nodes N           cap on symbolic nodes (default: none)\n"
        "  --jobs N                worker threads for the sketch search\n"
        "                          (default: 1; 0 = all hardware threads;\n"
        "                          any N returns the same program)\n"
        "  --no-branch-and-bound   disable cost pruning (ablation)\n"
        "  --no-analysis-pruning   disable the static analysis oracle\n"
        "                          (escape hatch; the oracle is sound, so\n"
        "                          the result is identical either way)\n"
        "  --no-cost-bound-pruning disable the admissible static cost\n"
        "                          bound (escape hatch; the bound is\n"
        "                          admissible, so the result is identical\n"
        "                          either way)\n"
        "  --stats                 print search statistics\n"
        "  --stats-json FILE       write statistics + outcome as JSON\n"
        "  --trace FILE            record a Chrome/Perfetto trace_event\n"
        "                          timeline of the run (open FILE in\n"
        "                          https://ui.perfetto.dev)\n"
        "  --metrics FILE          write a JSON snapshot of the metrics\n"
        "                          registry after the run\n"
        "  --decisions FILE        stream every DFS branch decision as\n"
        "                          JSONL (one decision per line)\n"
        "  --progress[=FILE]       live heartbeat: periodic JSONL\n"
        "                          progress records (elapsed, rate,\n"
        "                          budget consumption, best cost, ETA)\n"
        "                          to FILE, or stderr when no FILE\n"
        "  --progress-interval-ms N\n"
        "                          heartbeat period (default 1000)\n"
        "  --store DIR             durable synthesis store: serve hole\n"
        "                          solutions persisted by previous runs\n"
        "                          and write this run's results + search\n"
        "                          checkpoints behind (crash-safe: a\n"
        "                          killed or budget-aborted run resumes\n"
        "                          by rerunning warm and converges to the\n"
        "                          identical result).  STENSO_STORE in\n"
        "                          the environment is honored when the\n"
        "                          flag is absent\n"
        "  --no-store              ignore --store and STENSO_STORE\n"
        "  --rule                  print the generalized rewrite rule\n"
        "  --rules_out FILE        append the mined rule to a rule file\n"
        "  --rules_in FILE         skip synthesis; rewrite the program\n"
        "                          with previously mined rules instead\n";
}

/// One-line diagnostic + nonzero exit for every user-input error; the
/// tool never aborts on bad input.
int fail(const std::string &Message) {
  std::cerr << "error: " << Message << "\n";
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ProgramPath, OutPath, RulesOutPath, RulesInPath;
  std::string TracePath, MetricsPath, DecisionsPath, StatsJsonPath;
  std::string StorePath, ProgressPath;
  bool WantProgress = false;
  int ProgressIntervalMs = 1000;
  synth::SynthesisConfig Config;
  Config.CostModelName = "measured";
  Config.TimeoutSeconds = 60;
  bool PrintStats = false, PrintRule = false, NoStore = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--program")
      ProgramPath = Value();
    else if (Arg == "--synth_out")
      OutPath = Value();
    else if (Arg == "--cost_estimator")
      Config.CostModelName = Value();
    else if (Arg == "--timeout")
      Config.TimeoutSeconds = std::atof(Value().c_str());
    else if (Arg == "--max-nodes") {
      std::string Nodes = Value();
      std::optional<int64_t> Parsed = parseInt64(Nodes);
      if (!Parsed || *Parsed < 0)
        return fail("bad --max-nodes value '" + Nodes + "'");
      Config.MaxSymbolicNodes = *Parsed;
    } else if (Arg == "--jobs") {
      std::string Jobs = Value();
      std::optional<int64_t> Parsed = parseInt64(Jobs);
      if (!Parsed || *Parsed < 0 || *Parsed > 1024)
        return fail("bad --jobs value '" + Jobs + "'");
      Config.Jobs = static_cast<int>(*Parsed);
    } else if (Arg == "--no-branch-and-bound")
      Config.UseBranchAndBound = false;
    else if (Arg == "--no-analysis-pruning")
      Config.UseAnalysisPruning = false;
    else if (Arg == "--no-cost-bound-pruning")
      Config.UseCostBoundPruning = false;
    else if (Arg == "--rules_out")
      RulesOutPath = Value();
    else if (Arg == "--rules_in")
      RulesInPath = Value();
    else if (Arg == "--stats")
      PrintStats = true;
    else if (Arg == "--stats-json")
      StatsJsonPath = Value();
    else if (Arg == "--trace")
      TracePath = Value();
    else if (Arg == "--metrics")
      MetricsPath = Value();
    else if (Arg == "--decisions")
      DecisionsPath = Value();
    else if (Arg == "--progress")
      WantProgress = true;
    else if (Arg.rfind("--progress=", 0) == 0) {
      WantProgress = true;
      ProgressPath = Arg.substr(std::string("--progress=").size());
    } else if (Arg == "--progress-interval-ms") {
      std::string Interval = Value();
      std::optional<int64_t> Parsed = parseInt64(Interval);
      if (!Parsed || *Parsed <= 0 || *Parsed > 3600000)
        return fail("bad --progress-interval-ms value '" + Interval + "'");
      ProgressIntervalMs = static_cast<int>(*Parsed);
    } else if (Arg == "--store")
      StorePath = Value();
    else if (Arg == "--no-store")
      NoStore = true;
    else if (Arg == "--rule")
      PrintRule = true;
    else if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      return 0;
    } else {
      printUsage(std::cerr);
      return fail("unknown option '" + Arg + "'");
    }
  }
  if (ProgramPath.empty()) {
    printUsage(std::cerr);
    return fail("--program is required");
  }
  if (Config.CostModelName != "flops" && Config.CostModelName != "measured")
    return fail("unknown cost estimator '" + Config.CostModelName + "'");

  ProgramFile File;
  std::string Error;
  if (!loadProgramFile(ProgramPath, File, Error))
    return fail(Error);
  ParseResult Parsed = parseProgram(File.Source, File.Inputs);
  if (!Parsed)
    return fail(Parsed.Error);

  // Rule-application mode: rewrite with a mined-rule file, no synthesis.
  if (!RulesInPath.empty()) {
    std::ifstream RulesIn(RulesInPath);
    if (!RulesIn)
      return fail("cannot open '" + RulesInPath + "'");
    std::stringstream Buffer;
    Buffer << RulesIn.rdbuf();
    std::string RuleError;
    std::optional<evalsuite::RuleBook> Book =
        evalsuite::RuleBook::deserialize(Buffer.str(), RuleError);
    if (!Book)
      return fail(RuleError);
    dsl::Program Dest;
    RNG Rng(0x5741);
    int Applied = 0;
    const dsl::Node *Out = Book->applyVerified(
        Dest, Parsed.Prog->getRoot(), Rng, 3, &Applied);
    std::cerr << Applied << " rule(s) fired out of " << Book->size()
              << " loaded\n";
    std::cout << printNode(Out) << "\n";
    return 0;
  }

  // Telemetry attachments: a trace session covering the synthesis run
  // and an opt-in decision log.  Both are observation-only.
  observe::DecisionLog Decisions;
  if (!DecisionsPath.empty())
    Config.Decisions = &Decisions;
  std::optional<observe::TraceSession> Trace;
  if (!TracePath.empty()) {
    Trace.emplace();
    Trace->start();
  }
  std::optional<observe::ProgressMonitor> Progress;
  if (WantProgress) {
    observe::ProgressOptions ProgressOpts;
    ProgressOpts.IntervalMs = ProgressIntervalMs;
    if (ProgressPath.empty()) {
      Progress.emplace(std::cerr, ProgressOpts);
    } else {
      Progress.emplace(ProgressPath, ProgressOpts);
      if (!Progress->openedOk())
        return fail("cannot write '" + ProgressPath + "'");
    }
    Config.Progress = &*Progress;
    Progress->start();
  }

  // Durable store: the flag wins over the environment; --no-store beats
  // both.  Opening never fails hard — an unusable directory degrades the
  // store to an in-memory cache and the run proceeds.
  if (StorePath.empty() && !NoStore)
    if (const char *Env = std::getenv("STENSO_STORE"))
      StorePath = Env;
  std::optional<persist::StensoStore> Store;
  if (!StorePath.empty() && !NoStore) {
    persist::StensoStore::Options StoreOptions;
    StoreOptions.Dir = StorePath;
    Store.emplace(StoreOptions);
    Config.Store = &*Store;
  }

  synth::SynthesisResult Result =
      synth::Synthesizer(Config).run(*Parsed.Prog, File.Scaler);

  if (Progress) {
    Progress->stop();
    if (!ProgressPath.empty())
      std::cerr << "progress: " << Progress->recordsWritten()
                << " heartbeat(s) -> " << ProgressPath << "\n";
  }
  if (Trace) {
    Trace->stop();
    std::ofstream TraceOut(TracePath);
    if (!TraceOut)
      return fail("cannot write '" + TracePath + "'");
    Trace->writeJson(TraceOut);
    std::cerr << "trace: " << Trace->eventCount() << " event(s) from "
              << Trace->threadCount() << " thread(s) -> " << TracePath
              << "\n";
  }
  if (!MetricsPath.empty()) {
    std::ofstream MetricsOut(MetricsPath);
    if (!MetricsOut)
      return fail("cannot write '" + MetricsPath + "'");
    observe::MetricsRegistry::global().writeJson(MetricsOut);
  }
  if (!DecisionsPath.empty()) {
    std::ofstream DecisionsOut(DecisionsPath);
    if (!DecisionsOut)
      return fail("cannot write '" + DecisionsPath + "'");
    Decisions.writeJsonl(DecisionsOut);
    std::cerr << "decisions: " << Decisions.size() << " record(s) -> "
              << DecisionsPath << "\n";
  }

  std::cerr << (Result.Improved ? "improved" : "no improvement found")
            << " in "
            << TablePrinter::formatDouble(Result.SynthesisSeconds, 2)
            << " s (cost " << Result.OriginalCost << " -> "
            << Result.OptimizedCost << ")"
            << (Result.TimedOut ? " [search timed out]" : "") << "\n";
  std::cerr << "AbortReason=" << synth::toString(Result.Abort) << "\n";

  if (Store) {
    // Flush the final checkpoint batch before reporting sizes so the
    // record/byte counts reflect what actually survives this process.
    Store->flush();
    persist::StensoStore::Stats SS = Store->stats();
    std::cerr << "store: dir=" << Store->dir()
              << " hits=" << Result.Stats.StoreHits
              << " rejected=" << Result.Stats.StoreRejected
              << " puts=" << Result.Stats.StorePuts
              << " records=" << Store->size()
              << " bytes=" << Store->diskBytes();
    if (SS.TornBytesTruncated || SS.SegmentsQuarantined || SS.VersionSkipped)
      std::cerr << " recovered(torn_bytes=" << SS.TornBytesTruncated
                << " quarantined=" << SS.SegmentsQuarantined
                << " version_skipped=" << SS.VersionSkipped << ")";
    if (Store->degraded())
      std::cerr << " [degraded: in-memory only]";
    else if (Store->readOnly())
      std::cerr << " [read-only]";
    std::cerr << "\n";
    if (Result.Stats.StoreCheckpointLoaded)
      std::cerr << "store: resumed from a prior checkpoint for this "
                   "program/config\n";
  }

  if (PrintStats) {
    const synth::SynthesisStats &S = Result.Stats;
    std::cerr << "stats: stubs=" << S.NumStubs
              << " sketches=" << S.NumSketches << " dfs=" << S.DfsCalls
              << " solver=" << S.SolverSuccesses << "/" << S.SolverCalls
              << " pruned(cost)=" << S.PrunedByCost
              << " pruned(costbound)=" << S.PrunedByCostBound
              << " pruned(simplification)=" << S.PrunedBySimplification
              << " pruned(analysis)=" << S.PrunedByAnalysis << "\n";
    std::cerr << "analysis: sign=" << S.AnalysisPrunedSign
              << " degree=" << S.AnalysisPrunedDegree
              << " shape=" << S.AnalysisPrunedShape << "\n";
    std::cerr << "cache: solver hit/miss/evict=" << S.SolverCacheHits << "/"
              << S.SolverCacheMisses << "/" << S.SolverCacheEvictions
              << " intern nodes=" << S.InternedNodes
              << " hit/lookup=" << S.InternHits << "/" << S.InternLookups
              << " checkpoint calls/reads=" << S.CheckpointCalls << "/"
              << S.CheckpointClockReads << "\n";
  }
  if (!StatsJsonPath.empty()) {
    std::ofstream StatsOut(StatsJsonPath);
    if (!StatsOut)
      return fail("cannot write '" + StatsJsonPath + "'");
    synth::writeStatsJson(Result, StatsOut);
  }
  if (PrintRule && Result.Improved) {
    evalsuite::RewriteRule Rule = evalsuite::mineRewriteRule(
        Parsed.Prog->getRoot(), Result.Optimized->getRoot());
    std::cerr << "rule: " << Rule.toString() << "\n";
  }
  if (!RulesOutPath.empty() && Result.Improved) {
    evalsuite::RuleBook Book;
    if (Book.addRule(Parsed.Prog->getRoot(), Result.Optimized->getRoot())) {
      std::ofstream RulesOut(RulesOutPath, std::ios::app);
      if (!RulesOut) {
        std::cerr << "error: cannot write '" << RulesOutPath << "'\n";
        return 1;
      }
      RulesOut << Book.serialize();
      std::cerr << "rule appended to " << RulesOutPath << "\n";
    }
  }

  if (OutPath.empty()) {
    std::cout << Result.OptimizedSource << "\n";
  } else {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::cerr << "error: cannot write '" << OutPath << "'\n";
      return 1;
    }
    for (const auto &[Name, Type] : File.Inputs) {
      Out << "input " << Name << " " << stenso::toString(Type.Dtype);
      if (Type.TShape.getRank() > 0) {
        Out << "[";
        for (int64_t I = 0; I < Type.TShape.getRank(); ++I)
          Out << (I ? "," : "") << Type.TShape.getDim(I);
        Out << "]";
      }
      Out << "\n";
    }
    for (const auto &[Small, Full] : File.Scaler.getMappings())
      Out << "scale " << Small << " " << Full << "\n";
    Out << Result.OptimizedSource << "\n";
  }
  return 0;
}
