//===- stenso-fuzz.cpp - Coverage-guided differential fuzzing driver -------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of src/fuzz: generates (or replays) DSL
/// programs and runs each through the differential oracle stack —
/// jobs=1 vs jobs=N, analysis pruning on vs off, equivalence
/// verification and e-graph cross-checking of every accepted rewrite,
/// lint must not crash (DESIGN.md §12).
///
///   stenso-fuzz --seed 7 --budget 50
///   stenso-fuzz --seed 7 --budget 200 --corpus tests/fuzz_corpus --grow
///   stenso-fuzz --replay tests/fuzz_corpus/fz_0123456789abcdef.stenso
///
/// Reproducibility contract: stdout for a given --seed/--budget (and
/// corpus contents) is byte-identical across runs and hosts — the
/// budget counts oracle evaluations, all synthesis uses the flops cost
/// model, and timing goes to stderr / the --report JSON only.  The
/// STENSO_SEED environment variable overrides the default seed; an
/// explicit --seed flag wins over both.
///
/// Exit status: 0 clean, 1 when any finding (differential mismatch or
/// unparseable corpus entry) was produced, 2 on usage/load errors.
///
//===----------------------------------------------------------------------===//

#include "evalsuite/ProgramFile.h"
#include "fuzz/Fuzzer.h"
#include "observe/Json.h"
#include "support/RNG.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

using namespace stenso;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: stenso-fuzz [options]\n"
        "\n"
        "options:\n"
        "  --seed N         RNG seed (default 1; STENSO_SEED env overrides,\n"
        "                   an explicit flag wins over both)\n"
        "  --budget N       oracle evaluations to spend (default 25)\n"
        "  --max-ops N      operation budget per generated program "
        "(default 7)\n"
        "  --jobs N         worker count for the jobs differential "
        "(default 4)\n"
        "  --timeout SEC    wall-clock cap per synthesis run (default 10)\n"
        "  --solver-cap N   hole-solver call cap per run (default 3000)\n"
        "  --node-cap N     symbolic-node cap per run (default 50000; the\n"
        "                   deterministic bound on search depth)\n"
        "  --corpus DIR     seed the population from DIR's .stenso entries\n"
        "  --grow           persist coverage-novel clean programs into "
        "--corpus\n"
        "  --replay FILE    replay one .stenso file instead of generating\n"
        "                   (repeatable; findings are not minimized)\n"
        "  --report FILE    write a JSON report (includes timing; stdout\n"
        "                   stays deterministic)\n"
        "\n"
        "exit status: 0 clean, 1 findings produced, 2 usage/load error\n";
}

int fail(const std::string &Message) {
  std::cerr << "error: " << Message << "\n";
  return 2;
}

std::string reportJson(const fuzz::FuzzRunReport &Report, uint64_t Seed,
                       int Budget, double Seconds) {
  using observe::jsonAppendNumber;
  using observe::jsonQuote;
  const fuzz::FuzzRunStats &S = Report.Stats;
  std::string J = "{\n  \"seed\": " + std::to_string(Seed) +
                  ",\n  \"budget\": " + std::to_string(Budget);
  auto Int = [&J](const char *Key, int64_t V) {
    J += ",\n  \"";
    J += Key;
    J += "\": ";
    jsonAppendNumber(J, V);
  };
  Int("executed", S.Executed);
  Int("fresh", S.FreshGenerated);
  Int("mutants", S.Mutants);
  Int("duplicates", S.Duplicates);
  Int("non_comparable", S.NonComparable);
  Int("skipped_legs", S.SkippedLegs);
  Int("corpus_added", S.CorpusAdded);
  Int("findings", static_cast<int64_t>(Report.Findings.size()));
  Int("coverage_keys", static_cast<int64_t>(Report.Coverage.size()));
  J += ",\n  \"seconds\": " + observe::jsonNumber(Seconds);
  J += ",\n  \"programs_per_sec\": " +
       observe::jsonNumber(Seconds > 0 ? S.Executed / Seconds : 0);
  J += ",\n  \"coverage\": {";
  bool First = true;
  for (const auto &[Key, Count] : Report.Coverage.counts()) {
    J += First ? "\n    " : ",\n    ";
    First = false;
    J += jsonQuote(Key);
    J += ": ";
    jsonAppendNumber(J, Count);
  }
  J += "\n  },\n  \"coverage_curve\": [";
  First = true;
  for (const auto &[Executed, Keys] : S.CoverageCurve) {
    J += First ? "" : ", ";
    First = false;
    J += "[" + std::to_string(Executed) + ", " + std::to_string(Keys) + "]";
  }
  J += "],\n  \"finding_list\": [";
  First = true;
  for (const fuzz::FuzzFinding &F : Report.Findings) {
    J += First ? "\n    " : ",\n    ";
    First = false;
    J += "{\"check\": " + jsonQuote(F.Check) +
         ", \"name\": " + jsonQuote(F.Minimized.Name) +
         ", \"detail\": " + jsonQuote(F.Detail) +
         ", \"shrink_steps\": " + std::to_string(F.ShrinkSteps) +
         ", \"path\": " + jsonQuote(F.PersistedPath) + "}";
  }
  J += Report.Findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return J;
}

void printReport(const fuzz::FuzzRunReport &Report) {
  const fuzz::FuzzRunStats &S = Report.Stats;
  std::cout << "executed " << S.Executed << " programs (" << S.FreshGenerated
            << " fresh, " << S.Mutants << " mutants, " << S.Duplicates
            << " duplicates dropped)\n";
  std::cout << "coverage: " << Report.Coverage.size() << " distinct keys\n";
  for (const auto &[Key, Count] : Report.Coverage.counts())
    std::cout << "  " << Key << " x" << Count << "\n";
  std::cout << "non-comparable runs: " << S.NonComparable
            << ", skipped differential legs: " << S.SkippedLegs << "\n";
  if (S.CorpusAdded > 0)
    std::cout << "corpus entries added: " << S.CorpusAdded << "\n";
  for (const std::string &W : Report.Warnings)
    std::cout << "warning: " << W << "\n";
  if (Report.Findings.empty()) {
    std::cout << "findings: none\n";
    return;
  }
  std::cout << "findings: " << Report.Findings.size() << "\n";
  for (const fuzz::FuzzFinding &F : Report.Findings) {
    std::cout << "== " << F.Check << ": " << F.Detail << "\n";
    if (!F.PersistedPath.empty())
      std::cout << "   persisted: " << F.PersistedPath << "\n";
    std::cout << "   minimized (" << F.ShrinkSteps << " shrink steps):\n";
    std::cout << fuzz::toProgramText(F.Minimized);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  fuzz::FuzzerConfig Config;
  Config.Seed = seedFromEnv(1);
  Config.Budget = 25;
  std::vector<std::string> ReplayPaths;
  std::string ReportPath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextArg = [&]() -> std::optional<std::string> {
      if (I + 1 >= Argc)
        return std::nullopt;
      return std::string(Argv[++I]);
    };
    if (Arg == "--help" || Arg == "-h") {
      printUsage(std::cout);
      return 0;
    }
    auto Value = [&](const char *Name) -> std::optional<std::string> {
      if (Arg != Name)
        return std::nullopt;
      std::optional<std::string> V = NextArg();
      if (!V)
        std::cerr << "error: " << Name << " needs a value\n";
      return V;
    };
    if (Arg == "--grow") {
      Config.GrowCorpus = true;
      continue;
    }
    std::optional<std::string> V;
    if ((V = Value("--seed")))
      Config.Seed = std::strtoull(V->c_str(), nullptr, 0);
    else if ((V = Value("--budget")))
      Config.Budget = std::atoi(V->c_str());
    else if ((V = Value("--max-ops")))
      Config.Generator.MaxOps = std::atoi(V->c_str());
    else if ((V = Value("--jobs")))
      Config.Oracle.Jobs = std::atoi(V->c_str());
    else if ((V = Value("--timeout")))
      Config.Oracle.TimeoutSeconds = std::atof(V->c_str());
    else if ((V = Value("--solver-cap")))
      Config.Oracle.MaxSolverCalls = std::atoll(V->c_str());
    else if ((V = Value("--node-cap")))
      Config.Oracle.MaxSymbolicNodes = std::atoll(V->c_str());
    else if ((V = Value("--corpus")))
      Config.CorpusDir = *V;
    else if ((V = Value("--replay")))
      ReplayPaths.push_back(*V);
    else if ((V = Value("--report")))
      ReportPath = *V;
    else if (Arg == "--seed" || Arg == "--budget" || Arg == "--max-ops" ||
             Arg == "--jobs" || Arg == "--timeout" || Arg == "--solver-cap" ||
             Arg == "--node-cap" || Arg == "--corpus" || Arg == "--replay" ||
             Arg == "--report")
      return 2; // missing value, already reported
    else {
      printUsage(std::cerr);
      return fail("unknown option '" + Arg + "'");
    }
  }
  if (Config.Budget <= 0 && ReplayPaths.empty())
    return fail("--budget must be positive");
  if (Config.GrowCorpus && Config.CorpusDir.empty())
    return fail("--grow needs --corpus DIR");

  auto Start = std::chrono::steady_clock::now();
  fuzz::Fuzzer Driver(Config);
  fuzz::FuzzRunReport Report;

  if (!ReplayPaths.empty()) {
    std::vector<fuzz::FuzzCase> Cases;
    for (const std::string &Path : ReplayPaths) {
      evalsuite::ProgramFile File;
      std::string Error;
      if (!evalsuite::loadProgramFile(Path, File, Error))
        return fail(Error);
      fuzz::FuzzCase Case;
      size_t Slash = Path.find_last_of('/');
      Case.Name = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
      Case.Inputs = std::move(File.Inputs);
      Case.Scaler = File.Scaler;
      Case.Source = std::move(File.Source);
      Cases.push_back(std::move(Case));
    }
    std::cout << "replaying " << Cases.size() << " case(s)\n";
    Report = Driver.replay(Cases);
  } else {
    std::cout << "stenso-fuzz: seed " << Config.Seed << ", budget "
              << Config.Budget << "\n";
    Report = Driver.run();
  }
  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  printReport(Report);
  std::cerr << "elapsed: " << Seconds << " s\n";

  if (!ReportPath.empty()) {
    std::ofstream Out(ReportPath, std::ios::trunc);
    if (!Out)
      return fail("cannot write '" + ReportPath + "'");
    Out << reportJson(Report, Config.Seed, Config.Budget, Seconds);
  }
  return Report.Findings.empty() ? 0 : 1;
}
