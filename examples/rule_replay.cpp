//===- rule_replay.cpp - Mine once, rewrite forever -------------------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper frames synthesis cost as a one-time overhead whose results
/// "can be cached and reused indefinitely" and whose rules "could be
/// added to compilers" (Sections VII-D/E).  This example does exactly
/// that: superoptimize a handful of kernels once (seconds each), collect
/// the generalized rules into a RuleBook, and then rewrite *new* programs
/// at *new* shapes in microseconds — no search involved.
///
//===----------------------------------------------------------------------===//

#include "dsl/Parser.h"
#include "dsl/Printer.h"
#include "evalsuite/RuleBook.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "synth/Synthesizer.h"

#include <iostream>

using namespace stenso;
using namespace stenso::dsl;

namespace {

TensorType vec(int64_t N) { return TensorType{DType::Float64, Shape({N})}; }
TensorType mat(int64_t R, int64_t C) {
  return TensorType{DType::Float64, Shape({R, C})};
}

} // namespace

int main() {
  // Phase 1: the expensive part — superoptimize training kernels once.
  struct Seed {
    const char *Source;
    InputDecls Inputs;
  };
  const Seed Seeds[] = {
      {"np.diag(np.dot(A, B))", {{"A", mat(3, 3)}, {"B", mat(3, 3)}}},
      {"np.exp(np.log(A) - np.log(B))", {{"A", vec(4)}, {"B", vec(4)}}},
      {"np.power(A, 2)", {{"A", vec(4)}}},
      {"(A + B) / np.sqrt(A + B)", {{"A", vec(4)}, {"B", vec(4)}}},
      {"A * B + C * B", {{"A", vec(4)}, {"B", vec(4)}, {"C", vec(4)}}},
  };

  evalsuite::RuleBook Book;
  synth::SynthesisConfig Config;
  Config.TimeoutSeconds = 45;
  double SynthesisSeconds = 0;
  for (const Seed &S : Seeds) {
    ParseResult P = parseProgram(S.Source, S.Inputs);
    synth::SynthesisResult R = synth::Synthesizer(Config).run(*P.Prog);
    SynthesisSeconds += R.SynthesisSeconds;
    if (R.Improved && Book.addRule(P.Prog->getRoot(),
                                   R.Optimized->getRoot()))
      std::cout << "mined: " << S.Source << "  =>  " << R.OptimizedSource
                << "\n";
  }
  std::cout << "\n" << Book.size() << " rules mined in "
            << TablePrinter::formatDouble(SynthesisSeconds, 1)
            << " s of synthesis.\n\n";

  // Phase 2: the cheap part — rewrite unseen programs at unseen shapes.
  struct Subject {
    const char *Source;
    InputDecls Inputs;
  };
  const Subject Subjects[] = {
      {"np.diag(np.dot(P, Q)) * w",
       {{"P", mat(16, 16)}, {"Q", mat(16, 16)}, {"w", vec(16)}}},
      {"np.power(np.exp(np.log(u) - np.log(v)), 2)",
       {{"u", vec(100)}, {"v", vec(100)}}},
      {"(s + t) / np.sqrt(s + t) + s * r + t * r",
       {{"s", vec(50)}, {"t", vec(50)}, {"r", vec(50)}}},
  };

  TablePrinter Table({"Program", "Rewritten", "Rules fired", "Time"});
  RNG Rng(99);
  for (const Subject &S : Subjects) {
    ParseResult P = parseProgram(S.Source, S.Inputs);
    Program Dest;
    WallTimer Timer;
    int Applied = 0;
    const Node *Out = Book.applyVerified(Dest, P.Prog->getRoot(), Rng, 3,
                                         &Applied);
    double Micros = Timer.elapsedSeconds() * 1e6;
    Table.addRow({S.Source, printNode(Out), std::to_string(Applied),
                  TablePrinter::formatDouble(Micros, 0) + " us"});
  }
  Table.print(std::cout);
  std::cout << "\nRule replay is ~10^5x faster than re-running synthesis — "
               "this is how the\ndiscovered rewrites would ship inside a "
               "conventional compiler pass.\n";
  return 0;
}
