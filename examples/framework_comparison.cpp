//===- framework_comparison.cpp - One kernel across three backends ---------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-kernel version of the paper's Figure 4: compile and time one
/// program before and after superoptimization on the three framework
/// stand-ins (NumPy eager, JAX/XLA-like, PyTorch-Inductor-like), showing
/// how much of the headroom each framework's own rules already capture.
///
//===----------------------------------------------------------------------===//

#include "backend/ExecutionEngine.h"
#include "dsl/Parser.h"
#include "support/RNG.h"
#include "support/TablePrinter.h"
#include "synth/Synthesizer.h"

#include <iostream>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::backend;

int main() {
  // Strength-reduction bait: the compiled stand-ins rewrite pow(x, 2)
  // themselves, but none of them knows exp(log(x)) - or does it?  Compare
  // how much STENSO adds on top of each framework.
  std::string Source = "np.power(np.exp(np.log(A + B)), 2) / (A + B)";
  InputDecls Inputs = {
      {"A", TensorType{DType::Float64, Shape({65536})}},
      {"B", TensorType{DType::Float64, Shape({65536})}},
  };
  ParseResult Original = parseProgram(Source, Inputs);
  if (!Original) {
    std::cerr << "parse error: " << Original.Error << "\n";
    return 1;
  }

  // Search at a reduced shape; scale costs to the real 65536.
  InputDecls Small = {{"A", TensorType{DType::Float64, Shape({3})}},
                      {"B", TensorType{DType::Float64, Shape({3})}}};
  ParseResult Reduced = parseProgram(Source, Small);
  synth::ShapeScaler Scaler;
  Scaler.addMapping(3, 65536);

  synth::SynthesisConfig Config;
  Config.CostModelName = "measured";
  Config.TimeoutSeconds = 45;
  synth::SynthesisResult Result =
      synth::Synthesizer(Config).run(*Reduced.Prog, Scaler);
  std::cout << "original:  " << Source << "\n"
            << "optimized: " << Result.OptimizedSource << "\n\n";

  ParseResult Optimized = parseProgram(Result.OptimizedSource, Inputs);
  if (!Optimized) {
    std::cerr << "lift error: " << Optimized.Error << "\n";
    return 1;
  }

  RNG Rng(7);
  InputBinding Binding;
  for (const auto &[Name, Type] : Inputs) {
    Tensor T(Type.TShape);
    for (int64_t I = 0; I < T.getNumElements(); ++I)
      T.at(I) = Rng.positive();
    Binding.emplace(Name, std::move(T));
  }

  TablePrinter Table({"Framework", "original", "optimized", "speedup"});
  for (FrameworkKind Kind : {FrameworkKind::NumPyEager,
                             FrameworkKind::XlaLike,
                             FrameworkKind::InductorLike}) {
    BackendConfig BC;
    BC.Kind = Kind;
    ExecutionEngine Before(BC), After(BC);
    Before.compile(*Original.Prog);
    After.compile(*Optimized.Prog);
    double TB = Before.measureSeconds(Binding);
    double TA = After.measureSeconds(Binding);
    Table.addRow({toString(Kind),
                  TablePrinter::formatDouble(TB * 1e6, 1) + " us",
                  TablePrinter::formatDouble(TA * 1e6, 1) + " us",
                  TablePrinter::formatDouble(TB / TA, 2) + "x"});
  }
  Table.print(std::cout);
  std::cout << "\nExpected shape: large gain on eager NumPy; the XLA-like "
               "backend already cancels\nexp(log(...)) so STENSO adds "
               "less there; the Inductor-like rule set lacks that\nrule "
               "and benefits more.\n";
  return 0;
}
