//===- custom_cost_model.cpp - Choosing and scaling cost models ------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the two cost estimators (paper Section V-B / VI-C) and
/// the shape scaler.  np.sum(A * x, axis=1) and np.dot(A, x) perform the
/// same FLOPs, so the analytic model cannot choose between them; the
/// measured model profiles both op sequences at the *workload's real
/// sizes* (mapped from the small search shapes through a ShapeScaler) and
/// picks the fused contraction.
///
//===----------------------------------------------------------------------===//

#include "dsl/Parser.h"
#include "synth/Synthesizer.h"

#include <iostream>

using namespace stenso;
using namespace stenso::dsl;
using namespace stenso::synth;

int main() {
  // The program is declared at small "search" shapes (symbolic execution
  // is exponential in tensor volume)...
  std::string Source = "np.sum(A * x, axis=1)";
  InputDecls SearchShapes = {
      {"A", TensorType{DType::Float64, Shape({3, 4})}},
      {"x", TensorType{DType::Float64, Shape({4})}},
  };
  ParseResult Program = parseProgram(Source, SearchShapes);
  if (!Program) {
    std::cerr << "parse error: " << Program.Error << "\n";
    return 1;
  }

  // ...while the scaler tells the cost models that extent 3 really means
  // 384 and extent 4 really means 512 in production.
  ShapeScaler Scaler;
  Scaler.addMapping(3, 384);
  Scaler.addMapping(4, 512);

  for (const char *Model : {"flops", "measured"}) {
    SynthesisConfig Config;
    Config.CostModelName = Model;
    Config.TimeoutSeconds = 60;
    SynthesisResult Result = Synthesizer(Config).run(*Program.Prog, Scaler);
    std::cout << "cost model '" << Model << "':\n"
              << "  result:  " << Result.OptimizedSource << "\n"
              << "  cost:    " << Result.OriginalCost << " -> "
              << Result.OptimizedCost << " "
              << (std::string(Model) == "flops" ? "FLOPs" : "seconds")
              << "\n"
              << "  pruned " << Result.Stats.PrunedByCost
              << " branches by cost, " << Result.Stats.PrunedBySimplification
              << " by the simplification objective\n";
  }

  std::cout << "\nThe FLOP model keeps the original (both forms cost 2*n*m "
               "FLOPs); the measured\nmodel discovers np.dot(A, x) — one "
               "fused pass instead of multiply + temporary +\nreduce.  "
               "This is why the paper's evaluation uses the measured "
               "estimator.\n";
  return 0;
}
