//===- batch_superopt.cpp - Batch optimization and rule mining -------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optimizes a small corpus of user kernels in one go and mines the
/// discovered (original, optimized) pairs into generalized rewrite rules
/// (paper Section VII-D) — the rules one would feed back into a
/// conventional compiler or an e-graph optimizer.
///
//===----------------------------------------------------------------------===//

#include "dsl/Parser.h"
#include "evalsuite/RewriteRuleMiner.h"
#include "support/TablePrinter.h"
#include "synth/Synthesizer.h"

#include <iostream>

using namespace stenso;
using namespace stenso::dsl;

namespace {

struct Kernel {
  const char *Name;
  const char *Source;
  InputDecls Inputs;
};

TensorType vec(int64_t N) { return TensorType{DType::Float64, Shape({N})}; }
TensorType mat(int64_t R, int64_t C) {
  return TensorType{DType::Float64, Shape({R, C})};
}
TensorType scalarType() { return TensorType{DType::Float64, Shape()}; }

} // namespace

int main() {
  // A mixed corpus: the paper's motivating examples plus a loop kernel.
  const Kernel Corpus[] = {
      {"variance_diag", "np.diag(np.dot(S, S.T))",
       {{"S", mat(4, 4)}}},
      {"density_sum", "np.exp(np.log(P) - np.log(Q))",
       {{"P", vec(6)}, {"Q", vec(6)}}},
      {"smoothing", "W * U + V * U",
       {{"W", vec(6)}, {"U", vec(6)}, {"V", vec(6)}}},
      {"gradient", "np.stack([(lo*t + (1 - t)*hi) for t in T])",
       {{"T", vec(5)}, {"lo", scalarType()}, {"hi", scalarType()}}},
      {"normalize", "(X + Y) / np.sqrt(X + Y)",
       {{"X", vec(6)}, {"Y", vec(6)}}},
  };

  synth::SynthesisConfig Config;
  Config.CostModelName = "measured";
  Config.TimeoutSeconds = 45;

  TablePrinter Report({"Kernel", "Original", "Optimized", "Time",
                       "Cost ratio"});
  std::vector<evalsuite::RewriteRule> Rules;

  for (const Kernel &K : Corpus) {
    ParseResult Original = parseProgram(K.Source, K.Inputs);
    if (!Original) {
      std::cerr << K.Name << ": parse error: " << Original.Error << "\n";
      return 1;
    }
    synth::SynthesisResult Result =
        synth::Synthesizer(Config).run(*Original.Prog);
    double Ratio = Result.OriginalCost > 0
                       ? Result.OptimizedCost / Result.OriginalCost
                       : 1.0;
    Report.addRow({K.Name, K.Source, Result.OptimizedSource,
                   TablePrinter::formatDouble(Result.SynthesisSeconds, 2) +
                       "s",
                   TablePrinter::formatDouble(100.0 * Ratio, 1) + "%"});
    if (Result.Improved)
      Rules.push_back(evalsuite::mineRewriteRule(
          Original.Prog->getRoot(), Result.Optimized->getRoot()));
  }

  std::cout << "Batch superoptimization report:\n\n";
  Report.print(std::cout);

  std::cout << "\nDiscovered rewrite rules (generalized, Section VII-D "
               "style):\n";
  for (const evalsuite::RewriteRule &Rule : Rules)
    std::cout << "  " << Rule.toString() << "\n";
  std::cout << "\nThese rules are exactly the artifacts the paper proposes "
               "feeding back into\nrule-based compilers and e-graph "
               "optimizers.\n";
  return 0;
}
