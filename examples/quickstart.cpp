//===- quickstart.cpp - Five-minute tour of the STENSO API -----------------==//
//
// Part of the STENSO reproduction, released under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shortest useful STENSO program: parse a NumPy-style expression,
/// superoptimize it, verify the result is equivalent, and look at what
/// the search did.  Mirrors the paper artifact's
///
///   python stenso/main.py --program original.py --synth_out optimized.py
///
//===----------------------------------------------------------------------===//

#include "dsl/Interpreter.h"
#include "dsl/Parser.h"
#include "support/RNG.h"
#include "synth/Synthesizer.h"

#include <iostream>

using namespace stenso;
using namespace stenso::dsl;

int main() {
  // 1. Describe the program: NumPy-flavored source over typed inputs.
  //    This is the paper's running example of a diagonal of a matrix
  //    product — cubic work for a quadratic result.
  std::string Source = "np.diag(np.dot(A, B))";
  InputDecls Inputs = {
      {"A", TensorType{DType::Float64, Shape({4, 4})}},
      {"B", TensorType{DType::Float64, Shape({4, 4})}},
  };

  ParseResult Original = parseProgram(Source, Inputs);
  if (!Original) {
    std::cerr << "parse error: " << Original.Error << "\n";
    return 1;
  }

  // 2. Superoptimize.  The measured cost model profiles candidate
  //    operations on this machine; the search is exhaustive within the
  //    sketch grammar, pruned by branch-and-bound.
  synth::SynthesisConfig Config;
  Config.CostModelName = "measured";
  Config.TimeoutSeconds = 60;
  synth::Synthesizer Synth(Config);
  synth::SynthesisResult Result = Synth.run(*Original.Prog);

  std::cout << "original:  " << Source << "\n"
            << "optimized: " << Result.OptimizedSource << "\n"
            << "estimated cost: " << Result.OriginalCost << " -> "
            << Result.OptimizedCost << " ("
            << (Result.Improved ? "improved" : "kept") << ", "
            << Result.SynthesisSeconds << " s, "
            << Result.Stats.NumSketches << " sketches, "
            << Result.Stats.DfsCalls << " search nodes)\n";

  // 3. Trust, but verify: the optimized program computes the same values.
  if (Result.Improved) {
    RNG Rng(42);
    for (int Trial = 0; Trial < 5; ++Trial) {
      InputBinding Binding;
      for (const auto &[Name, Type] : Inputs) {
        Tensor T(Type.TShape);
        for (int64_t I = 0; I < T.getNumElements(); ++I)
          T.at(I) = Rng.positive();
        Binding.emplace(Name, std::move(T));
      }
      Tensor Want = interpretProgram(*Original.Prog, Binding);
      Tensor Got = interpretProgram(*Result.Optimized, Binding);
      if (!Want.allClose(Got)) {
        std::cerr << "MISMATCH on trial " << Trial << "\n";
        return 1;
      }
    }
    std::cout << "verified equivalent on 5 random inputs\n";
  }
  return 0;
}
