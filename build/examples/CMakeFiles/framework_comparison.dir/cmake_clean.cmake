file(REMOVE_RECURSE
  "CMakeFiles/framework_comparison.dir/framework_comparison.cpp.o"
  "CMakeFiles/framework_comparison.dir/framework_comparison.cpp.o.d"
  "framework_comparison"
  "framework_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
