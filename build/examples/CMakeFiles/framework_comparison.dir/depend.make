# Empty dependencies file for framework_comparison.
# This may be replaced when dependencies are built.
