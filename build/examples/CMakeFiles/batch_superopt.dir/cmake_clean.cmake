file(REMOVE_RECURSE
  "CMakeFiles/batch_superopt.dir/batch_superopt.cpp.o"
  "CMakeFiles/batch_superopt.dir/batch_superopt.cpp.o.d"
  "batch_superopt"
  "batch_superopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_superopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
