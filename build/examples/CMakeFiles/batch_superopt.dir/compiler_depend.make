# Empty compiler generated dependencies file for batch_superopt.
# This may be replaced when dependencies are built.
