# Empty dependencies file for rule_replay.
# This may be replaced when dependencies are built.
