file(REMOVE_RECURSE
  "CMakeFiles/rule_replay.dir/rule_replay.cpp.o"
  "CMakeFiles/rule_replay.dir/rule_replay.cpp.o.d"
  "rule_replay"
  "rule_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
