file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_class_speedups.dir/bench/bench_fig7_class_speedups.cpp.o"
  "CMakeFiles/bench_fig7_class_speedups.dir/bench/bench_fig7_class_speedups.cpp.o.d"
  "bench/bench_fig7_class_speedups"
  "bench/bench_fig7_class_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_class_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
