file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_detailed.dir/bench/bench_fig8_detailed.cpp.o"
  "CMakeFiles/bench_fig8_detailed.dir/bench/bench_fig8_detailed.cpp.o.d"
  "bench/bench_fig8_detailed"
  "bench/bench_fig8_detailed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_detailed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
