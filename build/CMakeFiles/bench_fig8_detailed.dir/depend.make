# Empty dependencies file for bench_fig8_detailed.
# This may be replaced when dependencies are built.
