file(REMOVE_RECURSE
  "CMakeFiles/bench_egraph_vs_synthesis.dir/bench/bench_egraph_vs_synthesis.cpp.o"
  "CMakeFiles/bench_egraph_vs_synthesis.dir/bench/bench_egraph_vs_synthesis.cpp.o.d"
  "bench/bench_egraph_vs_synthesis"
  "bench/bench_egraph_vs_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_egraph_vs_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
