# Empty dependencies file for bench_egraph_vs_synthesis.
# This may be replaced when dependencies are built.
