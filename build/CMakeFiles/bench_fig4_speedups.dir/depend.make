# Empty dependencies file for bench_fig4_speedups.
# This may be replaced when dependencies are built.
