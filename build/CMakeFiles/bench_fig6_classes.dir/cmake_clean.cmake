file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_classes.dir/bench/bench_fig6_classes.cpp.o"
  "CMakeFiles/bench_fig6_classes.dir/bench/bench_fig6_classes.cpp.o.d"
  "bench/bench_fig6_classes"
  "bench/bench_fig6_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
