# Empty dependencies file for bench_fig6_classes.
# This may be replaced when dependencies are built.
