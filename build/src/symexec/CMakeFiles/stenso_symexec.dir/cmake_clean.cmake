file(REMOVE_RECURSE
  "CMakeFiles/stenso_symexec.dir/SymTensor.cpp.o"
  "CMakeFiles/stenso_symexec.dir/SymTensor.cpp.o.d"
  "CMakeFiles/stenso_symexec.dir/SymbolicExecutor.cpp.o"
  "CMakeFiles/stenso_symexec.dir/SymbolicExecutor.cpp.o.d"
  "libstenso_symexec.a"
  "libstenso_symexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_symexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
