# Empty compiler generated dependencies file for stenso_symexec.
# This may be replaced when dependencies are built.
