file(REMOVE_RECURSE
  "libstenso_symexec.a"
)
