file(REMOVE_RECURSE
  "libstenso_dsl.a"
)
