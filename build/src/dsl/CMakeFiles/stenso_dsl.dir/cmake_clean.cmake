file(REMOVE_RECURSE
  "CMakeFiles/stenso_dsl.dir/FlopCost.cpp.o"
  "CMakeFiles/stenso_dsl.dir/FlopCost.cpp.o.d"
  "CMakeFiles/stenso_dsl.dir/Interpreter.cpp.o"
  "CMakeFiles/stenso_dsl.dir/Interpreter.cpp.o.d"
  "CMakeFiles/stenso_dsl.dir/Node.cpp.o"
  "CMakeFiles/stenso_dsl.dir/Node.cpp.o.d"
  "CMakeFiles/stenso_dsl.dir/Ops.cpp.o"
  "CMakeFiles/stenso_dsl.dir/Ops.cpp.o.d"
  "CMakeFiles/stenso_dsl.dir/Parser.cpp.o"
  "CMakeFiles/stenso_dsl.dir/Parser.cpp.o.d"
  "CMakeFiles/stenso_dsl.dir/Printer.cpp.o"
  "CMakeFiles/stenso_dsl.dir/Printer.cpp.o.d"
  "libstenso_dsl.a"
  "libstenso_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
