
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/FlopCost.cpp" "src/dsl/CMakeFiles/stenso_dsl.dir/FlopCost.cpp.o" "gcc" "src/dsl/CMakeFiles/stenso_dsl.dir/FlopCost.cpp.o.d"
  "/root/repo/src/dsl/Interpreter.cpp" "src/dsl/CMakeFiles/stenso_dsl.dir/Interpreter.cpp.o" "gcc" "src/dsl/CMakeFiles/stenso_dsl.dir/Interpreter.cpp.o.d"
  "/root/repo/src/dsl/Node.cpp" "src/dsl/CMakeFiles/stenso_dsl.dir/Node.cpp.o" "gcc" "src/dsl/CMakeFiles/stenso_dsl.dir/Node.cpp.o.d"
  "/root/repo/src/dsl/Ops.cpp" "src/dsl/CMakeFiles/stenso_dsl.dir/Ops.cpp.o" "gcc" "src/dsl/CMakeFiles/stenso_dsl.dir/Ops.cpp.o.d"
  "/root/repo/src/dsl/Parser.cpp" "src/dsl/CMakeFiles/stenso_dsl.dir/Parser.cpp.o" "gcc" "src/dsl/CMakeFiles/stenso_dsl.dir/Parser.cpp.o.d"
  "/root/repo/src/dsl/Printer.cpp" "src/dsl/CMakeFiles/stenso_dsl.dir/Printer.cpp.o" "gcc" "src/dsl/CMakeFiles/stenso_dsl.dir/Printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stenso_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stenso_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
