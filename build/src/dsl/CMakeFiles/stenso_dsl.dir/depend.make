# Empty dependencies file for stenso_dsl.
# This may be replaced when dependencies are built.
