file(REMOVE_RECURSE
  "libstenso_backend.a"
)
