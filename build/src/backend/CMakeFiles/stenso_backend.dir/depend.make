# Empty dependencies file for stenso_backend.
# This may be replaced when dependencies are built.
