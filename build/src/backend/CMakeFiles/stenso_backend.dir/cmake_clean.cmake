file(REMOVE_RECURSE
  "CMakeFiles/stenso_backend.dir/ExecutionEngine.cpp.o"
  "CMakeFiles/stenso_backend.dir/ExecutionEngine.cpp.o.d"
  "CMakeFiles/stenso_backend.dir/RewriteRules.cpp.o"
  "CMakeFiles/stenso_backend.dir/RewriteRules.cpp.o.d"
  "libstenso_backend.a"
  "libstenso_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
