# Empty compiler generated dependencies file for stenso_backend.
# This may be replaced when dependencies are built.
