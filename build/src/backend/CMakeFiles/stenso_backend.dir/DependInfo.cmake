
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/ExecutionEngine.cpp" "src/backend/CMakeFiles/stenso_backend.dir/ExecutionEngine.cpp.o" "gcc" "src/backend/CMakeFiles/stenso_backend.dir/ExecutionEngine.cpp.o.d"
  "/root/repo/src/backend/RewriteRules.cpp" "src/backend/CMakeFiles/stenso_backend.dir/RewriteRules.cpp.o" "gcc" "src/backend/CMakeFiles/stenso_backend.dir/RewriteRules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsl/CMakeFiles/stenso_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stenso_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stenso_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
