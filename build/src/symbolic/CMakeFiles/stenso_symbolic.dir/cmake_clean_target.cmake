file(REMOVE_RECURSE
  "libstenso_symbolic.a"
)
