# Empty compiler generated dependencies file for stenso_symbolic.
# This may be replaced when dependencies are built.
