# Empty dependencies file for stenso_symbolic.
# This may be replaced when dependencies are built.
