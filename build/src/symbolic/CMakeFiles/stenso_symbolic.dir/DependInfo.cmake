
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symbolic/Evaluator.cpp" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Evaluator.cpp.o" "gcc" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Evaluator.cpp.o.d"
  "/root/repo/src/symbolic/Expr.cpp" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Expr.cpp.o" "gcc" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Expr.cpp.o.d"
  "/root/repo/src/symbolic/ExprContext.cpp" "src/symbolic/CMakeFiles/stenso_symbolic.dir/ExprContext.cpp.o" "gcc" "src/symbolic/CMakeFiles/stenso_symbolic.dir/ExprContext.cpp.o.d"
  "/root/repo/src/symbolic/Linear.cpp" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Linear.cpp.o" "gcc" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Linear.cpp.o.d"
  "/root/repo/src/symbolic/Printer.cpp" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Printer.cpp.o" "gcc" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Printer.cpp.o.d"
  "/root/repo/src/symbolic/Transforms.cpp" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Transforms.cpp.o" "gcc" "src/symbolic/CMakeFiles/stenso_symbolic.dir/Transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/stenso_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
