file(REMOVE_RECURSE
  "CMakeFiles/stenso_symbolic.dir/Evaluator.cpp.o"
  "CMakeFiles/stenso_symbolic.dir/Evaluator.cpp.o.d"
  "CMakeFiles/stenso_symbolic.dir/Expr.cpp.o"
  "CMakeFiles/stenso_symbolic.dir/Expr.cpp.o.d"
  "CMakeFiles/stenso_symbolic.dir/ExprContext.cpp.o"
  "CMakeFiles/stenso_symbolic.dir/ExprContext.cpp.o.d"
  "CMakeFiles/stenso_symbolic.dir/Linear.cpp.o"
  "CMakeFiles/stenso_symbolic.dir/Linear.cpp.o.d"
  "CMakeFiles/stenso_symbolic.dir/Printer.cpp.o"
  "CMakeFiles/stenso_symbolic.dir/Printer.cpp.o.d"
  "CMakeFiles/stenso_symbolic.dir/Transforms.cpp.o"
  "CMakeFiles/stenso_symbolic.dir/Transforms.cpp.o.d"
  "libstenso_symbolic.a"
  "libstenso_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
