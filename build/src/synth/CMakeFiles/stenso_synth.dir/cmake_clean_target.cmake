file(REMOVE_RECURSE
  "libstenso_synth.a"
)
