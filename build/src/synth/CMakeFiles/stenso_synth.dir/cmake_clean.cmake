file(REMOVE_RECURSE
  "CMakeFiles/stenso_synth.dir/BottomUpSynthesizer.cpp.o"
  "CMakeFiles/stenso_synth.dir/BottomUpSynthesizer.cpp.o.d"
  "CMakeFiles/stenso_synth.dir/CostModel.cpp.o"
  "CMakeFiles/stenso_synth.dir/CostModel.cpp.o.d"
  "CMakeFiles/stenso_synth.dir/HoleSolver.cpp.o"
  "CMakeFiles/stenso_synth.dir/HoleSolver.cpp.o.d"
  "CMakeFiles/stenso_synth.dir/SketchLibrary.cpp.o"
  "CMakeFiles/stenso_synth.dir/SketchLibrary.cpp.o.d"
  "CMakeFiles/stenso_synth.dir/Synthesizer.cpp.o"
  "CMakeFiles/stenso_synth.dir/Synthesizer.cpp.o.d"
  "libstenso_synth.a"
  "libstenso_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
