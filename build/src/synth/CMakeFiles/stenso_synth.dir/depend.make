# Empty dependencies file for stenso_synth.
# This may be replaced when dependencies are built.
