file(REMOVE_RECURSE
  "CMakeFiles/stenso_egraph.dir/EGraph.cpp.o"
  "CMakeFiles/stenso_egraph.dir/EGraph.cpp.o.d"
  "libstenso_egraph.a"
  "libstenso_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
