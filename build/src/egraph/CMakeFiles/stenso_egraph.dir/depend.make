# Empty dependencies file for stenso_egraph.
# This may be replaced when dependencies are built.
