file(REMOVE_RECURSE
  "libstenso_egraph.a"
)
