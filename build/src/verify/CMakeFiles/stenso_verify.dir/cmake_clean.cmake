file(REMOVE_RECURSE
  "CMakeFiles/stenso_verify.dir/Equivalence.cpp.o"
  "CMakeFiles/stenso_verify.dir/Equivalence.cpp.o.d"
  "libstenso_verify.a"
  "libstenso_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
