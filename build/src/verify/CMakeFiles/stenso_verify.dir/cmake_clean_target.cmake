file(REMOVE_RECURSE
  "libstenso_verify.a"
)
