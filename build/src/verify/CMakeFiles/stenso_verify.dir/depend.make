# Empty dependencies file for stenso_verify.
# This may be replaced when dependencies are built.
