# Empty compiler generated dependencies file for stenso_support.
# This may be replaced when dependencies are built.
