file(REMOVE_RECURSE
  "libstenso_support.a"
)
