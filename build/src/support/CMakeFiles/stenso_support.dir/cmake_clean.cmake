file(REMOVE_RECURSE
  "CMakeFiles/stenso_support.dir/Error.cpp.o"
  "CMakeFiles/stenso_support.dir/Error.cpp.o.d"
  "CMakeFiles/stenso_support.dir/Rational.cpp.o"
  "CMakeFiles/stenso_support.dir/Rational.cpp.o.d"
  "CMakeFiles/stenso_support.dir/Statistics.cpp.o"
  "CMakeFiles/stenso_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/stenso_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/stenso_support.dir/TablePrinter.cpp.o.d"
  "libstenso_support.a"
  "libstenso_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
