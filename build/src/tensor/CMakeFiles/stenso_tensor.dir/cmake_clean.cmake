file(REMOVE_RECURSE
  "CMakeFiles/stenso_tensor.dir/Shape.cpp.o"
  "CMakeFiles/stenso_tensor.dir/Shape.cpp.o.d"
  "CMakeFiles/stenso_tensor.dir/Tensor.cpp.o"
  "CMakeFiles/stenso_tensor.dir/Tensor.cpp.o.d"
  "CMakeFiles/stenso_tensor.dir/TensorOps.cpp.o"
  "CMakeFiles/stenso_tensor.dir/TensorOps.cpp.o.d"
  "libstenso_tensor.a"
  "libstenso_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
