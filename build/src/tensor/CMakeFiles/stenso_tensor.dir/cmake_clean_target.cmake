file(REMOVE_RECURSE
  "libstenso_tensor.a"
)
