# Empty dependencies file for stenso_tensor.
# This may be replaced when dependencies are built.
