file(REMOVE_RECURSE
  "CMakeFiles/stenso_evalsuite.dir/Benchmarks.cpp.o"
  "CMakeFiles/stenso_evalsuite.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/stenso_evalsuite.dir/Classifier.cpp.o"
  "CMakeFiles/stenso_evalsuite.dir/Classifier.cpp.o.d"
  "CMakeFiles/stenso_evalsuite.dir/Harness.cpp.o"
  "CMakeFiles/stenso_evalsuite.dir/Harness.cpp.o.d"
  "CMakeFiles/stenso_evalsuite.dir/RewriteRuleMiner.cpp.o"
  "CMakeFiles/stenso_evalsuite.dir/RewriteRuleMiner.cpp.o.d"
  "CMakeFiles/stenso_evalsuite.dir/RuleBook.cpp.o"
  "CMakeFiles/stenso_evalsuite.dir/RuleBook.cpp.o.d"
  "libstenso_evalsuite.a"
  "libstenso_evalsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso_evalsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
