# Empty dependencies file for stenso_evalsuite.
# This may be replaced when dependencies are built.
