file(REMOVE_RECURSE
  "libstenso_evalsuite.a"
)
