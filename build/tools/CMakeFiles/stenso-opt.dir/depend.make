# Empty dependencies file for stenso-opt.
# This may be replaced when dependencies are built.
