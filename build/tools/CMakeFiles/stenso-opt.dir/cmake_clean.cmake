file(REMOVE_RECURSE
  "CMakeFiles/stenso-opt.dir/stenso-opt.cpp.o"
  "CMakeFiles/stenso-opt.dir/stenso-opt.cpp.o.d"
  "stenso-opt"
  "stenso-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stenso-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
