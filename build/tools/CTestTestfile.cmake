# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(stenso_opt_diag_dot "/root/repo/build/tools/stenso-opt" "--program" "/root/repo/examples/programs/diag_dot.stenso" "--timeout" "30" "--stats" "--rule")
set_tests_properties(stenso_opt_diag_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(stenso_opt_log_density "/root/repo/build/tools/stenso-opt" "--program" "/root/repo/examples/programs/log_density.stenso" "--cost_estimator" "flops" "--timeout" "30")
set_tests_properties(stenso_opt_log_density PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(stenso_opt_rejects_bad_args "/root/repo/build/tools/stenso-opt" "--bogus")
set_tests_properties(stenso_opt_rejects_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
