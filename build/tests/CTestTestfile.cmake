# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/SupportTest[1]_include.cmake")
include("/root/repo/build/tests/TensorTest[1]_include.cmake")
include("/root/repo/build/tests/SymbolicTest[1]_include.cmake")
include("/root/repo/build/tests/DslTest[1]_include.cmake")
include("/root/repo/build/tests/SymExecTest[1]_include.cmake")
include("/root/repo/build/tests/SynthTest[1]_include.cmake")
include("/root/repo/build/tests/BackendTest[1]_include.cmake")
include("/root/repo/build/tests/EvalSuiteTest[1]_include.cmake")
include("/root/repo/build/tests/PropertyTest[1]_include.cmake")
include("/root/repo/build/tests/RuleBookTest[1]_include.cmake")
include("/root/repo/build/tests/HoleSolverTest[1]_include.cmake")
include("/root/repo/build/tests/EGraphTest[1]_include.cmake")
include("/root/repo/build/tests/VerifyTest[1]_include.cmake")
