file(REMOVE_RECURSE
  "CMakeFiles/SymbolicTest.dir/SymbolicTest.cpp.o"
  "CMakeFiles/SymbolicTest.dir/SymbolicTest.cpp.o.d"
  "SymbolicTest"
  "SymbolicTest.pdb"
  "SymbolicTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SymbolicTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
