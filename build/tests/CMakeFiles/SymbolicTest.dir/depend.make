# Empty dependencies file for SymbolicTest.
# This may be replaced when dependencies are built.
