file(REMOVE_RECURSE
  "CMakeFiles/HoleSolverTest.dir/HoleSolverTest.cpp.o"
  "CMakeFiles/HoleSolverTest.dir/HoleSolverTest.cpp.o.d"
  "HoleSolverTest"
  "HoleSolverTest.pdb"
  "HoleSolverTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/HoleSolverTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
