# Empty dependencies file for HoleSolverTest.
# This may be replaced when dependencies are built.
