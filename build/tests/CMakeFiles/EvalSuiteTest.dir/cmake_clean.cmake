file(REMOVE_RECURSE
  "CMakeFiles/EvalSuiteTest.dir/EvalSuiteTest.cpp.o"
  "CMakeFiles/EvalSuiteTest.dir/EvalSuiteTest.cpp.o.d"
  "EvalSuiteTest"
  "EvalSuiteTest.pdb"
  "EvalSuiteTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EvalSuiteTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
