# Empty compiler generated dependencies file for EvalSuiteTest.
# This may be replaced when dependencies are built.
