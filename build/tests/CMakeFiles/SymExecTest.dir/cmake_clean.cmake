file(REMOVE_RECURSE
  "CMakeFiles/SymExecTest.dir/SymExecTest.cpp.o"
  "CMakeFiles/SymExecTest.dir/SymExecTest.cpp.o.d"
  "SymExecTest"
  "SymExecTest.pdb"
  "SymExecTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SymExecTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
