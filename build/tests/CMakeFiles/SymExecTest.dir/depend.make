# Empty dependencies file for SymExecTest.
# This may be replaced when dependencies are built.
