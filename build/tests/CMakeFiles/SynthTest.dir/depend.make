# Empty dependencies file for SynthTest.
# This may be replaced when dependencies are built.
