file(REMOVE_RECURSE
  "CMakeFiles/SynthTest.dir/SynthTest.cpp.o"
  "CMakeFiles/SynthTest.dir/SynthTest.cpp.o.d"
  "SynthTest"
  "SynthTest.pdb"
  "SynthTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SynthTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
