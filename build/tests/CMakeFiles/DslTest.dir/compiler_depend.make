# Empty compiler generated dependencies file for DslTest.
# This may be replaced when dependencies are built.
