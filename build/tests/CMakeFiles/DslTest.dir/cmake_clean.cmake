file(REMOVE_RECURSE
  "CMakeFiles/DslTest.dir/DslTest.cpp.o"
  "CMakeFiles/DslTest.dir/DslTest.cpp.o.d"
  "DslTest"
  "DslTest.pdb"
  "DslTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DslTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
