file(REMOVE_RECURSE
  "CMakeFiles/EGraphTest.dir/EGraphTest.cpp.o"
  "CMakeFiles/EGraphTest.dir/EGraphTest.cpp.o.d"
  "EGraphTest"
  "EGraphTest.pdb"
  "EGraphTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EGraphTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
