# Empty dependencies file for EGraphTest.
# This may be replaced when dependencies are built.
