file(REMOVE_RECURSE
  "CMakeFiles/TensorTest.dir/TensorTest.cpp.o"
  "CMakeFiles/TensorTest.dir/TensorTest.cpp.o.d"
  "TensorTest"
  "TensorTest.pdb"
  "TensorTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TensorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
