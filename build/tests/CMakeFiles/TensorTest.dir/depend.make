# Empty dependencies file for TensorTest.
# This may be replaced when dependencies are built.
