
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/RuleBookTest.cpp" "tests/CMakeFiles/RuleBookTest.dir/RuleBookTest.cpp.o" "gcc" "tests/CMakeFiles/RuleBookTest.dir/RuleBookTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/evalsuite/CMakeFiles/stenso_evalsuite.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/stenso_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/symexec/CMakeFiles/stenso_symexec.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/stenso_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/stenso_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/stenso_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stenso_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stenso_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
