file(REMOVE_RECURSE
  "CMakeFiles/RuleBookTest.dir/RuleBookTest.cpp.o"
  "CMakeFiles/RuleBookTest.dir/RuleBookTest.cpp.o.d"
  "RuleBookTest"
  "RuleBookTest.pdb"
  "RuleBookTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RuleBookTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
