# Empty dependencies file for RuleBookTest.
# This may be replaced when dependencies are built.
